//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and regex-character-class strategies,
//! [`collection::vec`] / [`collection::btree_set`], tuple strategies,
//! `prop_oneof!`, `Just`, `any::<T>()`, and the `proptest!` test macro
//! with optional `#![proptest_config(...)]`.
//!
//! Differences from the real crate, by design:
//! * *basic* shrinking only: integer-range strategies shrink toward the
//!   range start, `collection::vec` strategies drop elements and shrink
//!   the survivors, and tuple/boxed strategies delegate componentwise
//!   ([`Strategy::shrink`] proposes candidates; the runner greedily keeps
//!   any candidate that still fails, bounded by [`MAX_SHRINK_ITERS`]).
//!   Mapped/flat-mapped strategies do not shrink — there is no value tree
//!   to walk back through — so properties that want minimal
//!   counterexamples should bind raw integer/`Vec` inputs;
//! * inputs are generated from a fixed per-test seed, so runs are fully
//!   reproducible without a persistence file;
//! * string strategies support only single character classes (`[...]` or
//!   `\PC`) with an optional `{m,n}` repetition — which is all the tests
//!   here use.

use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash of a test path, used as the per-test base seed.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps simulation-heavy properties
        // fast while still exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy

/// Cap on total shrink attempts per failing case.
pub const MAX_SHRINK_ITERS: usize = 256;

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first. The
    /// default is no shrinking; integer ranges, `collection::vec` and
    /// tuples override it.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Bounded recursive strategies: at each of `depth` levels the result
    /// is either the base strategy or one application of `branch` to the
    /// previous level (the `_desired_size` / `_expected_branch` tuning
    /// knobs of the real crate are accepted and ignored).
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// Always produces a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].generate(rng)
    }
}

// Ranges --------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
            /// Shrinks toward the range start: the start itself, the
            /// midpoint, and one step down — enough for the greedy
            /// runner to bisect to a minimal failing value.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, v) = (self.start as i128, *value as i128);
                let mut out = Vec::new();
                if v <= lo {
                    return out;
                }
                out.push(self.start);
                let mid = lo + (v - lo) / 2;
                if mid > lo && mid < v {
                    out.push(mid as $t);
                }
                if v - 1 > lo && v - 1 != mid {
                    out.push((v - 1) as $t);
                }
                out
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (a, b) = (self.start as f64, self.end as f64);
                let v = a + rng.unit() * (b - a);
                if v >= b { self.start } else { v as $t }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

// Strings -------------------------------------------------------------------

/// `&str` strategies are regex patterns. Supported grammar: one character
/// class (`[...]` with escapes and ranges, or `\PC` for "any printable")
/// followed by an optional `{min,max}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, min, max) = parse_pattern(self);
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| pool[rng.below(pool.len())]).collect()
    }
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    let pool: Vec<char> = match chars.peek() {
        Some('[') => {
            chars.next();
            let mut pool = Vec::new();
            let mut pending: Option<char> = None;
            loop {
                let c = chars.next().unwrap_or_else(|| {
                    panic!("unterminated character class in pattern {pattern:?}")
                });
                match c {
                    ']' => {
                        pool.extend(pending.take());
                        break;
                    }
                    '\\' => {
                        pool.extend(pending.take());
                        pending = Some(chars.next().expect("dangling escape"));
                    }
                    '-' if pending.is_some() && chars.peek() != Some(&']') => {
                        let lo = pending.take().unwrap();
                        let hi = chars.next().unwrap();
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                        pool.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                    }
                    c => {
                        pool.extend(pending.take());
                        pending = Some(c);
                    }
                }
            }
            pool
        }
        Some('\\') => {
            // \PC ("not a control character"): a representative mixed pool
            // of ASCII, multi-byte and astral characters.
            chars.next();
            assert_eq!(chars.next(), Some('P'), "unsupported escape in {pattern:?}");
            assert_eq!(chars.next(), Some('C'), "unsupported escape in {pattern:?}");
            let mut pool: Vec<char> = (' '..='~').collect();
            pool.extend("éπñ日本語мир😀🚀«»".chars());
            pool
        }
        _ => panic!("unsupported pattern {pattern:?}"),
    };
    assert!(!pool.is_empty(), "empty character class in pattern {pattern:?}");

    let rest: String = chars.collect();
    if rest.is_empty() {
        return (pool, 1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported quantifier {rest:?} in {pattern:?}"));
    let (lo, hi) = inner.split_once(',').unwrap_or((inner, inner));
    let min: usize = lo.trim().parse().expect("bad repetition bound");
    let max: usize = hi.trim().parse().expect("bad repetition bound");
    assert!(min <= max, "bad repetition {{{inner}}} in {pattern:?}");
    (pool, min, max)
}

// Tuples --------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            /// Componentwise shrinking: each position's candidates with
            /// the sibling values held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut c = value.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A 0);
impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);

// any -----------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, sign-symmetric, wide dynamic range
        let m = rng.unit() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * (2f64).powi(e)
    }
}

/// Full-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// Collections ---------------------------------------------------------------

pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
        /// Shorter vectors first (drop the tail half, then single
        /// elements), then elementwise shrinks — so a failing 200-step
        /// history collapses to the few steps that matter.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let n = value.len();
            let min = self.size.min;
            let mut out = Vec::new();
            if n > min {
                let keep = (n / 2).max(min);
                if keep < n {
                    out.push(value[..keep].to_vec());
                }
                for i in (0..n).rev().take(16) {
                    let mut c = value.clone();
                    c.remove(i);
                    out.push(c);
                }
            }
            for (i, v) in value.iter().enumerate().take(16) {
                for cand in self.elem.shrink(v).into_iter().take(3) {
                    let mut c = value.clone();
                    c[i] = cand;
                    out.push(c);
                }
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.min + rng.below(self.size.max - self.size.min + 1);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than `target`; cap the
            // attempts so exhausted domains return a best-effort set.
            let mut attempts = 0;
            while set.len() < target && attempts < 50 * (target + 1) {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// Shrinking runner ----------------------------------------------------------

/// Greedily minimizes a failing input: repeatedly asks the strategy for
/// candidates and keeps the first one that still fails, until no
/// candidate fails or the attempt budget runs out. `failing` must return
/// `true` for `input` (and for whatever it returns). The default panic
/// hook is silenced for the duration — every probed candidate that still
/// fails would otherwise spray a panic report.
pub fn shrink_to_minimal<S: Strategy>(
    strategy: &S,
    mut input: S::Value,
    failing: impl Fn(&S::Value) -> bool,
) -> S::Value {
    // The panic hook is process-global and the default test harness runs
    // tests on several threads: serialize the swap/restore so two
    // concurrently shrinking properties can't capture each other's
    // silent hook and leave it installed forever.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut budget = MAX_SHRINK_ITERS;
    'outer: while budget > 0 {
        for cand in strategy.shrink(&input) {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if failing(&cand) {
                input = cand;
                continue 'outer;
            }
        }
        break;
    }
    std::panic::set_hook(prev_hook);
    input
}

/// The `proptest!` runner: generates `config.cases` inputs from the
/// per-test seed, and on the first failing case shrinks it to a minimal
/// failing input before re-running it unprotected — so the panic that
/// surfaces carries the real assertion message *and* the minimal input
/// has been printed to stderr.
pub fn run_cases<S: Strategy>(
    test_path: &str,
    config: ProptestConfig,
    strategy: &S,
    run: impl Fn(&S::Value) -> Result<(), String>,
) where
    S::Value: Clone + std::fmt::Debug,
{
    let base = fnv(test_path);
    let fails = |vals: &S::Value| -> bool {
        !matches!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(vals))),
            Ok(Ok(()))
        )
    };
    for case in 0..config.cases {
        let mut rng =
            TestRng::new(base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let input = strategy.generate(&mut rng);
        if !fails(&input) {
            continue;
        }
        let minimal = shrink_to_minimal(strategy, input, fails);
        eprintln!("proptest case {case} of {test_path} failed; shrunk input: {minimal:?}");
        if let Err(e) = run(&minimal) {
            panic!("property failed on case {case} (shrunk input above): {e}");
        }
        panic!(
            "property failed on case {case} but its shrunk input passed on rerun — \
             the body is nondeterministic"
        );
    }
}

// Macros --------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                // One tuple strategy over all bindings, so failing cases
                // can shrink componentwise.
                let strategy = ($($strat,)*);
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cfg,
                    &strategy,
                    // The inner closure lets a test body bail early with
                    // `return Ok(());` as real proptest allows.
                    |__vals| {
                        let ($($pat,)*) = ::std::clone::Clone::clone(__vals);
                        #[allow(clippy::redundant_closure_call)]
                        (|| { $body Ok(()) })()
                    },
                );
            }
        )*
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        shrink_to_minimal, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
        Union, MAX_SHRINK_ITERS,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = (1usize..6, 0.5f64..2.0);
        for _ in 0..200 {
            let (n, x) = s.generate(&mut rng);
            assert!((1..6).contains(&n));
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn char_class_patterns_generate_members() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = "[a-c]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let escaped = r#"[a\-\.\"\\/]{0,12}"#.generate(&mut rng);
        assert!(escaped.chars().all(|c| "a-.\"\\/".contains(c)), "{escaped:?}");
        let any = r"\PC{0,64}".generate(&mut rng);
        assert!(any.chars().count() <= 64);
    }

    #[test]
    fn int_range_shrinks_toward_start() {
        let s = 3u32..100;
        assert!(s.shrink(&3).is_empty(), "start value is already minimal");
        let cands = s.shrink(&80);
        assert_eq!(cands[0], 3, "range start first");
        assert!(cands.contains(&41), "midpoint: {cands:?}");
        assert!(cands.contains(&79), "one step down: {cands:?}");
        let signed = (-10i64..10).shrink(&-10);
        assert!(signed.is_empty());
    }

    #[test]
    fn vec_strategy_shrinks_shorter_and_elementwise() {
        let s = collection::vec(0u32..100, 1..10);
        let v = vec![5u32, 80, 7];
        let cands = s.shrink(&v);
        assert!(cands.contains(&vec![5]), "tail-half drop: {cands:?}");
        assert!(cands.contains(&vec![5, 80]), "single-element drop: {cands:?}");
        assert!(cands.contains(&vec![0, 80, 7]), "elementwise shrink: {cands:?}");
        // min size is respected
        let s1 = collection::vec(0u32..100, 3..=3);
        assert!(s1.shrink(&v).iter().all(|c| c.len() == 3));
    }

    #[test]
    fn shrink_to_minimal_finds_small_counterexample() {
        // "Fails" when any element reaches 10: the unique minimal failing
        // input under this strategy is the one-element vector [10].
        let strat = (collection::vec(0u32..100, 0..20),);
        let failing = |v: &(Vec<u32>,)| v.0.iter().any(|&x| x >= 10);
        let input = (vec![3u32, 50, 7, 99, 2],);
        assert!(failing(&input));
        let minimal = shrink_to_minimal(&strat, input, failing);
        assert!(failing(&minimal), "shrinking must preserve failure");
        assert_eq!(minimal.0, vec![10], "greedy shrink should reach the minimum");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        #[should_panic(expected = "property failed")]
        fn failing_property_panics_after_shrinking(v in collection::vec(0u32..100, 0..30)) {
            // Most generated cases contain an element ≥ 50, so this fails
            // fast, shrinks, and re-raises through the runner.
            if v.iter().any(|&x| x >= 50) {
                return Err("element out of tolerance".to_string());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), v in collection::vec(0i64..5, 1..4)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            if v.len() == 1 {
                return Ok(());
            }
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }

        #[test]
        fn oneof_and_recursive_terminate(x in prop_oneof![Just(-1i64), 0i64..10]) {
            prop_assert!(x == -1 || (0..10).contains(&x));
        }
    }
}
