//! Offline stand-in for the `crossbeam` crate: just `channel::unbounded`
//! with cloneable receivers (an MPMC channel built from `std::sync::mpsc`
//! behind a mutex), which is what the HTTP worker pool needs.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Cloneable sending half.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Cloneable receiving half; receivers share one queue.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API shape, backed by
    //! `std::thread::scope` (stable since 1.63).

    /// Wrapper passed to `scope` closures; `spawn` hands a fresh wrapper
    /// to each spawned closure like crossbeam does.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns. Unlike
    /// crossbeam this cannot observe child panics as an `Err` (std's
    /// scope propagates them), so the result is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}
