//! Offline stand-in for the `crossbeam` crate: just `channel::unbounded`
//! with cloneable senders *and* receivers (a condvar-based MPMC queue),
//! which is what the HTTP worker pool and the forecast worker pool need.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cv: Condvar,
    }

    /// Cloneable sending half.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // wake blocked receivers so they can observe the hangup
                self.0.cv.notify_all();
            }
        }
    }

    /// Error returned when all receivers are gone. (This queue never
    /// drops receivers' shared state early, so sends cannot actually
    /// fail; the type exists for API compatibility.)
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv` when the queue is momentarily empty
    /// or all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.push_back(value);
            drop(inner);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    /// Cloneable receiving half; receivers share one queue. Unlike the
    /// previous `std::sync::mpsc`-backed version, a blocked `recv` does
    /// *not* hold the queue lock, so `try_recv` from another thread
    /// (e.g. a scope helping while it waits) always makes progress.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .cv
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1 }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API shape, backed by
    //! `std::thread::scope` (stable since 1.63).

    /// Wrapper passed to `scope` closures; `spawn` hands a fresh wrapper
    /// to each spawned closure like crossbeam does.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns. Unlike
    /// crossbeam this cannot observe child panics as an `Err` (std's
    /// scope propagates them), so the result is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_round_trip() {
        let (tx, rx) = channel::unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx2.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_does_not_starve_try_recv() {
        let (tx, rx) = channel::unbounded::<u32>();
        let rx2 = rx.clone();
        let blocked = std::thread::spawn(move || rx.recv());
        // give the thread time to block inside recv()
        std::thread::sleep(std::time::Duration::from_millis(20));
        // try_recv must not deadlock against the blocked recv
        assert_eq!(rx2.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(blocked.join().unwrap(), Ok(7));
    }

    #[test]
    fn cloned_senders_keep_the_channel_open() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        assert_eq!(rx.recv(), Ok(9));
        drop(tx2);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
