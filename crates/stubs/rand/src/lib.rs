//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides a deterministic `SmallRng` (splitmix64 seeding into
//! xoshiro256**-lite) and just the traits the workspace calls:
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen, gen_bool}` and
//! `seq::SliceRandom::{shuffle, choose}`. Stream values differ from the
//! real crate, but every consumer seeds explicitly and only relies on
//! determinism, not on a specific stream.

use std::ops::Range;

/// Core randomness source: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256** core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

/// Types `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // modulo bias is irrelevant for a test/workload generator
                let v = (rng() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                // 53 uniform mantissa bits in [0, 1)
                let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
                let (a, b) = (range.start as f64, range.end as f64);
                let v = a + unit * (b - a);
                // guard against rounding up to the excluded endpoint
                if v >= b { range.start } else { v as $t }
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample(&mut f, range)
    }

    /// A uniform `f64` in `[0, 1)` (the only `gen` form used here).
    fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        Rng::gen(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&v));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
