//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (no `LockResult`; poisoning is converted into a panic, which matches
//! how this workspace uses the real crate).

use std::sync;

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
