//! # forecast — the concurrent forecast engine
//!
//! The paper's PNFS answers one query by building a fresh flow-level
//! simulation and running it on the calling thread. That is fine for a
//! demo and hopeless for a service: under concurrent traffic every HTTP
//! worker burns CPU rebuilding identical scaffolding and re-simulating
//! identical questions. This crate is the serving layer that fixes that,
//! three pieces deep:
//!
//! ## Worker pool ([`pool`], re-exported from the `exec` crate)
//!
//! A hand-rolled fixed-size pool of persistent threads (no rayon in this
//! environment) with a rayon-style *scoped* submission API, so jobs can
//! borrow request data from the caller's stack. Pool sizing defaults to
//! `available_parallelism`; simulation is CPU-bound, so more threads than
//! cores only add scheduling noise. A waiting scope *helps* by draining
//! the queue, so nested scopes cannot deadlock. The pool lives in the
//! bottom-layer `exec` crate and is shared downward: the engine hands its
//! one pool to every simulation it builds, so `MaxMinSolver`'s
//! independent-component solves fan out through the same threads instead
//! of oversubscribing the machine.
//!
//! ## Warm sessions ([`session`])
//!
//! Per-platform scaffolding that queries should not rebuild: the solver
//! capacity vector (built once per platform, cloned per simulation), a
//! memoized route-resolution table (endpoint pair → [`simflow::ResolvedPath`]),
//! and the *background flows* of the current metrology epoch, resolved
//! once when the data arrives. Sessions are `Arc`-shared across HTTP and
//! pool workers; the backing [`simflow::Platform`] is immutable.
//!
//! ## Epoch-keyed cache ([`cache`])
//!
//! A forecast is a pure function of `(platform, background epoch,
//! canonicalized query)`. The engine keeps a monotonic epoch counter;
//! ingesting new metrology data bumps it ([`ForecastEngine::bump_epoch`]),
//! which makes every cached entry unreachable in O(1) — no per-entry
//! invalidation to get wrong. Within an epoch, a repeated query returns
//! the memoized result, which renders to bit-identical JSON upstream.
//! Serving-time platform events (a link degrading, failing or
//! recovering — [`ForecastEngine::link_event`]) deliberately avoid that
//! hammer: keys also carry a route-footprint digest and only entries
//! whose routes the event can touch are invalidated, while disjoint
//! queries keep hitting ([`cache`] module docs have the full contract).
//!
//! ## Determinism
//!
//! Parallel execution never changes an answer: `predict` shards batches
//! into link-disjoint components (exact under max-min sharing) and
//! merges durations by request index; `select_fastest` simulates
//! hypothesis waves in parallel but *replays* the sequential
//! prune/select decision procedure over the collected makespans, so the
//! winner and pruned set always match the sequential reference
//! implementation (`pilgrim_core::Pnfs::select_fastest_reference`).

//! ## Singleflight and degraded serving
//!
//! Concurrent duplicate requests are *coalesced* ([`engine`] module
//! docs): one leader simulates, followers share its `Arc`'d result —
//! panic-safe, counted, and bit-identical by the determinism contract.
//! With a nonzero [`EngineConfig::stale_retention`] the cache keeps a
//! few trailing epochs so an overloaded server can answer from slightly
//! stale forecasts instead of shedding, and [`faults`] provides the
//! seed-deterministic fault injection the chaos tests drive all of this
//! with.

pub mod cache;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod session;

/// The worker pool now lives in the bottom-layer [`exec`] crate so that
/// `simflow`'s solver can fan out through the same primitive without a
/// dependency cycle; this alias keeps the historical `forecast::pool`
/// paths working.
pub use exec::pool;

pub use cache::{CacheKey, CachedResult, ForecastCache};
pub use engine::{EngineConfig, ForecastEngine, ForecastError, Selection, TransferSpec};
pub use exec::{Scope, WorkerPool};
pub use metrics::{ForecastMetrics, KernelCounters};
pub use faults::{Fault, FaultInjector, FaultPlan};
pub use session::{BackgroundFlow, LinkState, ResolvedSpec, Session};
