//! The epoch-keyed forecast result cache.
//!
//! Forecasts are pure functions of `(platform, background-traffic epoch,
//! query)`: the platform model is immutable, and everything time-varying
//! (background flows derived from metrology) is folded into a
//! monotonically increasing *epoch* counter that the engine bumps
//! whenever new measurement data is ingested. Keying cache entries by
//! epoch makes invalidation free — a bump makes every old entry
//! unreachable, and [`ForecastCache::purge_stale`] reclaims the memory.
//!
//! Queries are canonicalized structurally (host names + size bit
//! patterns), so two textually different requests for the same forecast
//! (`5e8` vs `500000000`, reordered query parameters upstream) share an
//! entry, while `-0.0`/`0.0`-style float subtleties cannot collide.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Selection, TransferSpec};

/// Canonical form of one transfer tuple: names plus the exact bit
/// pattern of the size (f64 equality is the wrong notion for keys).
type CanonicalTransfer = (String, String, u64);

/// Cache key: platform + epoch + canonicalized query.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CacheKey {
    /// A `predict_transfers` batch.
    Predict {
        /// Platform name.
        platform: String,
        /// Background-traffic epoch the result was computed under.
        epoch: u64,
        /// Canonicalized transfer list, in request order (order matters:
        /// answers are positional).
        transfers: Vec<CanonicalTransfer>,
    },
    /// A `select_fastest` hypothesis set.
    Select {
        /// Platform name.
        platform: String,
        /// Background-traffic epoch the result was computed under.
        epoch: u64,
        /// Canonicalized hypotheses (order matters: the winner is an
        /// index into this list).
        hypotheses: Vec<Vec<CanonicalTransfer>>,
    },
}

fn canonicalize(specs: &[TransferSpec]) -> Vec<CanonicalTransfer> {
    specs
        .iter()
        .map(|s| (s.src.clone(), s.dst.clone(), s.size.to_bits()))
        .collect()
}

impl CacheKey {
    /// Key for a predict batch.
    pub fn predict(platform: &str, epoch: u64, specs: &[TransferSpec]) -> CacheKey {
        CacheKey::Predict {
            platform: platform.to_string(),
            epoch,
            transfers: canonicalize(specs),
        }
    }

    /// Key for a hypothesis-selection query.
    pub fn select(platform: &str, epoch: u64, hypotheses: &[Vec<TransferSpec>]) -> CacheKey {
        CacheKey::Select {
            platform: platform.to_string(),
            epoch,
            hypotheses: hypotheses.iter().map(|h| canonicalize(h)).collect(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            CacheKey::Predict { epoch, .. } | CacheKey::Select { epoch, .. } => *epoch,
        }
    }
}

/// A cached forecast result.
#[derive(Clone, Debug)]
pub enum CachedResult {
    /// Durations of a predict batch, in request order.
    Predict(Arc<Vec<f64>>),
    /// Outcome of a selection.
    Select(Arc<Selection>),
}

struct Inner {
    map: HashMap<CacheKey, CachedResult>,
    /// Insertion order for FIFO eviction once `capacity` is reached.
    order: VecDeque<CacheKey>,
}

/// A bounded, thread-safe forecast cache.
pub struct ForecastCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ForecastCache {
    /// A cache holding at most `capacity` entries (FIFO eviction).
    pub fn new(capacity: usize) -> ForecastCache {
        ForecastCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks a key up, counting the hit/miss.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let inner = self.inner.lock();
        match inner.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a result, evicting the oldest entry when full.
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            // A racing query computed the same forecast; results are
            // deterministic, keep the existing entry.
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                }
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, value);
    }

    /// Drops every entry computed under an epoch older than `current`.
    /// Lookups already miss such entries (the epoch is part of the key);
    /// this reclaims their memory.
    pub fn purge_stale(&self, current: u64) {
        let mut inner = self.inner.lock();
        inner.order.retain(|k| k.epoch() == current);
        inner.map.retain(|k, _| k.epoch() == current);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: &str, dst: &str, size: f64) -> TransferSpec {
        TransferSpec { src: src.into(), dst: dst.into(), size }
    }

    #[test]
    fn canonical_keys_ignore_text_form_but_not_order() {
        let a = CacheKey::predict("p", 0, &[spec("a", "b", 5e8)]);
        let b = CacheKey::predict("p", 0, &[spec("a", "b", 500_000_000.0)]);
        assert_eq!(a, b, "5e8 and 500000000 are the same query");
        let swapped = CacheKey::predict("p", 0, &[spec("b", "a", 5e8)]);
        assert_ne!(a, swapped);
        let two = CacheKey::predict("p", 0, &[spec("a", "b", 1.0), spec("c", "d", 1.0)]);
        let two_rev = CacheKey::predict("p", 0, &[spec("c", "d", 1.0), spec("a", "b", 1.0)]);
        assert_ne!(two, two_rev, "answers are positional; order is part of the key");
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let cache = ForecastCache::new(16);
        let k0 = CacheKey::predict("p", 0, &[spec("a", "b", 1.0)]);
        let k1 = CacheKey::predict("p", 1, &[spec("a", "b", 1.0)]);
        cache.insert(k0.clone(), CachedResult::Predict(Arc::new(vec![1.0])));
        assert!(cache.get(&k0).is_some());
        assert!(cache.get(&k1).is_none(), "new epoch must miss");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn purge_drops_old_epochs() {
        let cache = ForecastCache::new(16);
        for e in 0..4u64 {
            cache.insert(
                CacheKey::predict("p", e, &[spec("a", "b", e as f64)]),
                CachedResult::Predict(Arc::new(vec![0.0])),
            );
        }
        assert_eq!(cache.len(), 4);
        cache.purge_stale(3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ForecastCache::new(3);
        for i in 0..10 {
            cache.insert(
                CacheKey::predict("p", 0, &[spec("a", "b", i as f64)]),
                CachedResult::Predict(Arc::new(vec![i as f64])),
            );
        }
        assert_eq!(cache.len(), 3);
        // the newest entries survive
        let newest = CacheKey::predict("p", 0, &[spec("a", "b", 9.0)]);
        assert!(cache.get(&newest).is_some());
        let oldest = CacheKey::predict("p", 0, &[spec("a", "b", 0.0)]);
        assert!(cache.get(&oldest).is_none());
    }
}
