//! The epoch-keyed forecast result cache.
//!
//! Forecasts are pure functions of `(platform, background-traffic epoch,
//! query)`: the platform model is immutable, and everything time-varying
//! (background flows derived from metrology) is folded into a
//! monotonically increasing *epoch* counter that the engine bumps
//! whenever new measurement data is ingested. Keying cache entries by
//! epoch makes invalidation free — a bump makes every old entry
//! unreachable, and [`ForecastCache::purge_stale`] reclaims the memory.
//!
//! Queries are canonicalized structurally (host names + size bit
//! patterns), so two textually different requests for the same forecast
//! (`5e8` vs `500000000`, reordered query parameters upstream) share an
//! entry, while `-0.0`/`0.0`-style float subtleties cannot collide.
//!
//! Eviction is LRU: a hit promotes its entry to most-recently-used, so a
//! small working set of hot queries (the realistic serving mix — a few
//! dashboards asking the same questions) survives a long tail of one-off
//! queries that would have flushed it under FIFO.
//!
//! ## Route-aware invalidation
//!
//! Serving-time platform events (a link degrading, failing, or
//! recovering — `ForecastEngine::link_event`) must invalidate exactly
//! the entries whose answers the event can change, without the epoch
//! hammer that evicts everything. Two mechanisms split that job:
//!
//! * **Correctness** is carried by the key: every key embeds a
//!   *footprint* — `Session::footprint`'s digest of the link-state
//!   overlay as seen from the query's route union (through background
//!   coupling). A query whose routes are component-disjoint from every
//!   degraded link digests to 0, exactly as before any event, so its
//!   pre-event entries still hit; a query the event can touch digests
//!   differently and misses. Because identity overlay entries are
//!   removed on restore, footprints are **not** monotonic — a restore
//!   returns the digest to its old value, soundly re-validating the old
//!   entries (the platform really is back in that state).
//! * **Memory and observability** are carried by targeted eviction:
//!   [`ForecastCache::invalidate_link`] walks the entries of the event's
//!   platform and drops those whose recorded route set crosses the
//!   resource, counting them as `invalidated_targeted` (the epoch
//!   hammer's removals count as `invalidated_epoch`). Entries orphaned
//!   only through background coupling keep their memory until LRU
//!   reclaims them — they are unreachable by key, never wrong.
//!
//! Because footprints are not monotonic, a result computed under one
//! overlay must not be filed under a key computed from another:
//! [`ForecastCache::insert_if`] re-checks the session's overlay version
//! under the cache lock and drops the result on mismatch (the racing
//! `link_event`'s eviction serializes on the same lock).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use telemetry::{Counter, MetricsRegistry};

use crate::engine::{Selection, TransferSpec};

/// Canonical form of one transfer tuple: names plus the exact bit
/// pattern of the size (f64 equality is the wrong notion for keys).
type CanonicalTransfer = (String, String, u64);

/// Cache key: platform + epoch + overlay footprint + canonicalized
/// query.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CacheKey {
    /// A `predict_transfers` batch.
    Predict {
        /// Platform name.
        platform: String,
        /// Background-traffic epoch the result was computed under.
        epoch: u64,
        /// Digest of the link-state overlay as seen from the query's
        /// routes (0 when no relevant resource is degraded) — see the
        /// module docs.
        footprint: u64,
        /// Canonicalized transfer list, in request order (order matters:
        /// answers are positional).
        transfers: Vec<CanonicalTransfer>,
    },
    /// A `select_fastest` hypothesis set.
    Select {
        /// Platform name.
        platform: String,
        /// Background-traffic epoch the result was computed under.
        epoch: u64,
        /// Digest of the link-state overlay as seen from the query's
        /// routes (0 when no relevant resource is degraded).
        footprint: u64,
        /// Canonicalized hypotheses (order matters: the winner is an
        /// index into this list).
        hypotheses: Vec<Vec<CanonicalTransfer>>,
    },
}

fn canonicalize(specs: &[TransferSpec]) -> Vec<CanonicalTransfer> {
    specs
        .iter()
        .map(|s| (s.src.clone(), s.dst.clone(), s.size.to_bits()))
        .collect()
}

impl CacheKey {
    /// Key for a predict batch.
    pub fn predict(
        platform: &str,
        epoch: u64,
        footprint: u64,
        specs: &[TransferSpec],
    ) -> CacheKey {
        CacheKey::Predict {
            platform: platform.to_string(),
            epoch,
            footprint,
            transfers: canonicalize(specs),
        }
    }

    /// Key for a hypothesis-selection query.
    pub fn select(
        platform: &str,
        epoch: u64,
        footprint: u64,
        hypotheses: &[Vec<TransferSpec>],
    ) -> CacheKey {
        CacheKey::Select {
            platform: platform.to_string(),
            epoch,
            footprint,
            hypotheses: hypotheses.iter().map(|h| canonicalize(h)).collect(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            CacheKey::Predict { epoch, .. } | CacheKey::Select { epoch, .. } => *epoch,
        }
    }

    fn platform(&self) -> &str {
        match self {
            CacheKey::Predict { platform, .. } | CacheKey::Select { platform, .. } => platform,
        }
    }

    /// Whether `other` asks the same question (same variant, platform,
    /// overlay footprint and canonical payload) at a possibly different
    /// epoch — the matching notion behind degraded-mode stale serving.
    /// Footprints must match: an answer computed under a different
    /// link-state overlay is the wrong answer, not a stale one.
    fn same_query(&self, other: &CacheKey) -> bool {
        match (self, other) {
            (
                CacheKey::Predict { platform: p1, footprint: f1, transfers: t1, .. },
                CacheKey::Predict { platform: p2, footprint: f2, transfers: t2, .. },
            ) => p1 == p2 && f1 == f2 && t1 == t2,
            (
                CacheKey::Select { platform: p1, footprint: f1, hypotheses: h1, .. },
                CacheKey::Select { platform: p2, footprint: f2, hypotheses: h2, .. },
            ) => p1 == p2 && f1 == f2 && h1 == h2,
            _ => false,
        }
    }
}

/// A cached forecast result.
#[derive(Clone, Debug)]
pub enum CachedResult {
    /// Durations of a predict batch, in request order.
    Predict(Arc<Vec<f64>>),
    /// Outcome of a selection.
    Select(Arc<Selection>),
}

/// Slab slot sentinel: "no neighbor".
const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    /// `None` only while the slot sits on the free list.
    value: Option<CachedResult>,
    /// Sorted, deduplicated solver resource ids of the query's route
    /// union — what [`ForecastCache::invalidate_link`] matches against.
    /// `None` for entries inserted without route information.
    routes: Option<Arc<[u32]>>,
    prev: usize,
    next: usize,
}

/// Slab-backed intrusive LRU list + key index. The list is threaded
/// through slab indices (`head` = most recent, `tail` = next eviction
/// victim), so a hit promotes in O(1) with no allocation.
struct Inner {
    map: HashMap<CacheKey, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    /// Insertions since the last periodic purge.
    inserts_since_purge: usize,
    /// Highest epoch seen on any inserted key: the "current" epoch the
    /// periodic purge measures staleness against.
    latest_epoch: u64,
}

impl Inner {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Removes a linked entry entirely (index structures and slab slot).
    fn remove(&mut self, idx: usize) {
        self.unlink(idx);
        self.map.remove(&self.entries[idx].key);
        self.entries[idx].value = None;
        self.free.push(idx);
    }

    /// Drops every entry whose epoch is more than `retention` behind
    /// `current`, returning how many were removed.
    fn purge(&mut self, current: u64, retention: u64) -> u64 {
        let stale: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| k.epoch().saturating_add(retention) < current)
            .map(|(_, &idx)| idx)
            .collect();
        let n = stale.len() as u64;
        for idx in stale {
            self.remove(idx);
        }
        n
    }
}

/// Insertions between periodic purges: frequent enough that stale
/// entries cannot pile up between epoch bumps under a steady insert
/// stream, rare enough that the O(n) scan is amortized away.
const PURGE_EVERY_INSERTS: usize = 64;

/// A bounded, thread-safe forecast cache with LRU eviction.
pub struct ForecastCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Epochs of slack before a stale entry is purged: `0` (the
    /// default) purges everything but the current epoch; degraded-mode
    /// serving keeps a few old epochs around to answer from when
    /// shedding.
    retention: u64,
    // Serving statistics are shared-handle `telemetry` counters so a
    // `MetricsRegistry` can adopt the very cells the hot path bumps
    // (`register_metrics`) — no snapshot copying, no second source of
    // truth.
    hits: Counter,
    misses: Counter,
    coalesced: Counter,
    stale_served: Counter,
    shed: Counter,
    /// Entries evicted by route-targeted link invalidation.
    invalidated_targeted: Counter,
    /// Entries reclaimed by epoch purges (the blanket hammer).
    invalidated_epoch: Counter,
}

impl ForecastCache {
    /// A cache holding at most `capacity` entries (LRU eviction), with
    /// no stale retention.
    pub fn new(capacity: usize) -> ForecastCache {
        ForecastCache::with_retention(capacity, 0)
    }

    /// A cache keeping entries up to `retention` epochs behind the
    /// current one across purges (degraded-mode stale serving).
    pub fn with_retention(capacity: usize, retention: u64) -> ForecastCache {
        ForecastCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                entries: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                inserts_since_purge: 0,
                latest_epoch: 0,
            }),
            capacity: capacity.max(1),
            retention,
            hits: Counter::new(),
            misses: Counter::new(),
            coalesced: Counter::new(),
            stale_served: Counter::new(),
            shed: Counter::new(),
            invalidated_targeted: Counter::new(),
            invalidated_epoch: Counter::new(),
        }
    }

    /// Adopts the cache's serving counters into `registry` — the
    /// exposition reads the same atomic cells the hot path increments.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter(
            "forecast_cache_hits_total",
            "Forecast cache lookups answered from a fresh entry",
            &[],
            &self.hits,
        );
        registry.adopt_counter(
            "forecast_cache_misses_total",
            "Forecast cache lookups that found no fresh entry",
            &[],
            &self.misses,
        );
        registry.adopt_counter(
            "forecast_coalesced_total",
            "Requests that joined an in-flight identical computation",
            &[],
            &self.coalesced,
        );
        registry.adopt_counter(
            "forecast_stale_served_total",
            "Degraded-mode answers served from a stale epoch",
            &[],
            &self.stale_served,
        );
        registry.adopt_counter(
            "forecast_shed_total",
            "Requests shed by admission control",
            &[],
            &self.shed,
        );
        registry.adopt_counter(
            "forecast_cache_invalidated_total",
            "Cache entries dropped by invalidation, by mechanism",
            &[("kind", "targeted")],
            &self.invalidated_targeted,
        );
        registry.adopt_counter(
            "forecast_cache_invalidated_total",
            "Cache entries dropped by invalidation, by mechanism",
            &[("kind", "epoch")],
            &self.invalidated_epoch,
        );
    }

    /// Looks a key up, counting the hit/miss. A hit promotes the entry to
    /// most-recently-used.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).copied() {
            Some(idx) => {
                self.hits.inc();
                inner.unlink(idx);
                inner.push_front(idx);
                inner.entries[idx].value.clone()
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Looks a key up without counting or promoting. The singleflight
    /// double-check uses this: it must not skew hit/miss statistics or
    /// recency for a lookup the caller already accounted.
    pub fn peek(&self, key: &CacheKey) -> Option<CachedResult> {
        let inner = self.inner.lock();
        inner.map.get(key).and_then(|&idx| inner.entries[idx].value.clone())
    }

    /// Degraded-mode lookup: the freshest retained entry answering the
    /// *same query* as `fresh` at an older epoch, with its epoch lag.
    /// Counts a stale serve (not a hit) and promotes the entry.
    pub fn get_stale(&self, fresh: &CacheKey) -> Option<(CachedResult, u64)> {
        let fresh_epoch = fresh.epoch();
        let mut inner = self.inner.lock();
        let mut best: Option<(usize, u64)> = None;
        for (k, &idx) in inner.map.iter() {
            let e = k.epoch();
            if e < fresh_epoch && k.same_query(fresh) && best.is_none_or(|(_, be)| e > be) {
                best = Some((idx, e));
            }
        }
        let (idx, e) = best?;
        inner.unlink(idx);
        inner.push_front(idx);
        let value = inner.entries[idx].value.clone()?;
        self.stale_served.inc();
        Some((value, fresh_epoch - e))
    }

    /// Inserts a result, evicting the least-recently-used entry when
    /// full. Every [`PURGE_EVERY_INSERTS`] insertions the cache also
    /// purges entries stale relative to the highest epoch it has seen,
    /// so stale results are reclaimed even if nobody calls
    /// [`ForecastCache::purge_stale`].
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        self.insert_if(key, value, None, || true);
    }

    /// [`ForecastCache::insert`] with route metadata and a validity
    /// check. `valid` runs under the cache lock immediately before the
    /// entry is filed; returning `false` drops the result. The engine
    /// passes a closure comparing the session's overlay version against
    /// the snapshot its key was computed from — any `link_event` racing
    /// the computation bumps the version first and evicts under this
    /// same lock, so a result keyed by a dead footprint can never land
    /// after the eviction swept past it (see the module docs). `routes`
    /// (sorted, deduplicated resource ids) makes the entry eligible for
    /// [`ForecastCache::invalidate_link`].
    pub fn insert_if(
        &self,
        key: CacheKey,
        value: CachedResult,
        routes: Option<Arc<[u32]>>,
        valid: impl FnOnce() -> bool,
    ) {
        let mut inner = self.inner.lock();
        if !valid() {
            return;
        }
        inner.latest_epoch = inner.latest_epoch.max(key.epoch());
        inner.inserts_since_purge += 1;
        if inner.inserts_since_purge >= PURGE_EVERY_INSERTS {
            inner.inserts_since_purge = 0;
            let current = inner.latest_epoch;
            let purged = inner.purge(current, self.retention);
            self.invalidated_epoch.add(purged);
        }
        if inner.map.contains_key(&key) {
            // A racing query computed the same forecast; results are
            // deterministic, keep the existing entry.
            return;
        }
        while inner.map.len() >= self.capacity {
            let victim = inner.tail;
            if victim == NIL {
                break;
            }
            inner.remove(victim);
        }
        let entry = Entry { key: key.clone(), value: Some(value), routes, prev: NIL, next: NIL };
        let idx = match inner.free.pop() {
            Some(idx) => {
                inner.entries[idx] = entry;
                idx
            }
            None => {
                inner.entries.push(entry);
                inner.entries.len() - 1
            }
        };
        inner.map.insert(key, idx);
        inner.push_front(idx);
    }

    /// Route-targeted invalidation: drops every entry of `platform`
    /// whose recorded route union crosses solver resource `resource`,
    /// returning how many were evicted (also accumulated into
    /// [`ForecastCache::invalidated_targeted`]). Entries without route
    /// metadata are left alone — their footprint keying keeps them
    /// correct; LRU reclaims their memory.
    pub fn invalidate_link(&self, platform: &str, resource: u32) -> u64 {
        let mut inner = self.inner.lock();
        let victims: Vec<usize> = inner
            .map
            .iter()
            .filter(|(k, &idx)| {
                k.platform() == platform
                    && inner.entries[idx]
                        .routes
                        .as_ref()
                        .is_some_and(|r| r.binary_search(&resource).is_ok())
            })
            .map(|(_, &idx)| idx)
            .collect();
        let n = victims.len() as u64;
        for idx in victims {
            inner.remove(idx);
        }
        self.invalidated_targeted.add(n);
        n
    }

    /// Drops every entry more than the retention window behind
    /// `current`. Fresh lookups already miss old entries (the epoch is
    /// part of the key); this reclaims their memory, keeping up to the
    /// configured number of trailing epochs for stale serving.
    pub fn purge_stale(&self, current: u64) {
        let mut inner = self.inner.lock();
        inner.latest_epoch = inner.latest_epoch.max(current);
        let purged = inner.purge(current, self.retention);
        self.invalidated_epoch.add(purged);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Records a request that joined an in-flight computation instead of
    /// re-simulating (singleflight).
    pub fn note_coalesced(&self) {
        self.coalesced.inc();
    }

    /// Requests coalesced onto in-flight computations so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.get()
    }

    /// Stale-epoch answers served so far (degraded mode).
    pub fn stale_served(&self) -> u64 {
        self.stale_served.get()
    }

    /// Records a request shed by admission control without an answer
    /// from this cache.
    pub fn note_shed(&self) {
        self.shed.inc();
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Entries evicted by route-targeted link invalidation so far.
    pub fn invalidated_targeted(&self) -> u64 {
        self.invalidated_targeted.get()
    }

    /// Entries reclaimed by epoch purges so far.
    pub fn invalidated_epoch(&self) -> u64 {
        self.invalidated_epoch.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: &str, dst: &str, size: f64) -> TransferSpec {
        TransferSpec { src: src.into(), dst: dst.into(), size }
    }

    #[test]
    fn canonical_keys_ignore_text_form_but_not_order() {
        let a = CacheKey::predict("p", 0, 0, &[spec("a", "b", 5e8)]);
        let b = CacheKey::predict("p", 0, 0, &[spec("a", "b", 500_000_000.0)]);
        assert_eq!(a, b, "5e8 and 500000000 are the same query");
        let swapped = CacheKey::predict("p", 0, 0, &[spec("b", "a", 5e8)]);
        assert_ne!(a, swapped);
        let two = CacheKey::predict("p", 0, 0, &[spec("a", "b", 1.0), spec("c", "d", 1.0)]);
        let two_rev = CacheKey::predict("p", 0, 0, &[spec("c", "d", 1.0), spec("a", "b", 1.0)]);
        assert_ne!(two, two_rev, "answers are positional; order is part of the key");
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let cache = ForecastCache::new(16);
        let k0 = CacheKey::predict("p", 0, 0, &[spec("a", "b", 1.0)]);
        let k1 = CacheKey::predict("p", 1, 0, &[spec("a", "b", 1.0)]);
        cache.insert(k0.clone(), CachedResult::Predict(Arc::new(vec![1.0])));
        assert!(cache.get(&k0).is_some());
        assert!(cache.get(&k1).is_none(), "new epoch must miss");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn purge_drops_old_epochs() {
        let cache = ForecastCache::new(16);
        for e in 0..4u64 {
            cache.insert(
                CacheKey::predict("p", e, 0, &[spec("a", "b", e as f64)]),
                CachedResult::Predict(Arc::new(vec![0.0])),
            );
        }
        assert_eq!(cache.len(), 4);
        cache.purge_stale(3);
        assert_eq!(cache.len(), 1);
        // list structure stays consistent after the purge
        let survivor = CacheKey::predict("p", 3, 0, &[spec("a", "b", 3.0)]);
        assert!(cache.get(&survivor).is_some());
        cache.insert(
            CacheKey::predict("p", 3, 0, &[spec("a", "b", 99.0)]),
            CachedResult::Predict(Arc::new(vec![9.0])),
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_bounds_the_cache() {
        let cache = ForecastCache::new(3);
        for i in 0..10 {
            cache.insert(
                CacheKey::predict("p", 0, 0, &[spec("a", "b", i as f64)]),
                CachedResult::Predict(Arc::new(vec![i as f64])),
            );
        }
        assert_eq!(cache.len(), 3);
        // with no intervening hits, the newest entries survive
        let newest = CacheKey::predict("p", 0, 0, &[spec("a", "b", 9.0)]);
        assert!(cache.get(&newest).is_some());
        let oldest = CacheKey::predict("p", 0, 0, &[spec("a", "b", 0.0)]);
        assert!(cache.get(&oldest).is_none());
    }

    #[test]
    fn hot_key_survives_eviction_pressure() {
        // The hot key is inserted FIRST and then hit between every
        // insertion. Under FIFO it would be the first eviction victim
        // (insertion order alone decides); under LRU the promotions keep
        // it resident through 20 one-off insertions into a 3-entry cache.
        let cache = ForecastCache::new(3);
        let hot = CacheKey::predict("p", 0, 0, &[spec("hot", "hot", 1.0)]);
        cache.insert(hot.clone(), CachedResult::Predict(Arc::new(vec![42.0])));
        for i in 0..20 {
            cache.insert(
                CacheKey::predict("p", 0, 0, &[spec("a", "b", i as f64)]),
                CachedResult::Predict(Arc::new(vec![i as f64])),
            );
            assert!(
                cache.get(&hot).is_some(),
                "hot key evicted after {} one-off insertions",
                i + 1
            );
        }
        assert_eq!(cache.len(), 3);
        match cache.get(&hot) {
            Some(CachedResult::Predict(v)) => assert_eq!(*v, vec![42.0]),
            other => panic!("hot key lost: {:?}", other.is_some()),
        }
    }

    #[test]
    fn peek_neither_counts_nor_promotes() {
        let cache = ForecastCache::new(2);
        let a = CacheKey::predict("p", 0, 0, &[spec("a", "b", 1.0)]);
        let b = CacheKey::predict("p", 0, 0, &[spec("c", "d", 1.0)]);
        cache.insert(a.clone(), CachedResult::Predict(Arc::new(vec![1.0])));
        cache.insert(b.clone(), CachedResult::Predict(Arc::new(vec![2.0])));
        assert!(cache.peek(&a).is_some());
        assert!(cache.peek(&CacheKey::predict("p", 9, 0, &[])).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0), "peek is statistics-free");
        // `a` was peeked, not promoted: the next insert still evicts it
        cache.insert(
            CacheKey::predict("p", 0, 0, &[spec("e", "f", 1.0)]),
            CachedResult::Predict(Arc::new(vec![3.0])),
        );
        assert!(cache.peek(&a).is_none(), "peek must not refresh recency");
        assert!(cache.peek(&b).is_some());
    }

    #[test]
    fn retention_keeps_trailing_epochs_and_serves_stale() {
        let cache = ForecastCache::with_retention(16, 2);
        for e in 0..5u64 {
            cache.insert(
                CacheKey::predict("p", e, 0, &[spec("a", "b", 1.0)]),
                CachedResult::Predict(Arc::new(vec![e as f64])),
            );
        }
        cache.purge_stale(5);
        assert_eq!(cache.len(), 2, "epochs 3 and 4 sit inside the retention window");

        // stale lookup: freshest retained epoch wins, lag is reported
        let fresh = CacheKey::predict("p", 5, 0, &[spec("a", "b", 1.0)]);
        match cache.get_stale(&fresh) {
            Some((CachedResult::Predict(v), lag)) => {
                assert_eq!(*v, vec![4.0]);
                assert_eq!(lag, 1);
            }
            other => panic!("expected stale hit, got {:?}", other.map(|(_, l)| l)),
        }
        assert_eq!(cache.stale_served(), 1);
        // a different query has nothing to serve
        let unknown = CacheKey::predict("p", 5, 0, &[spec("x", "y", 1.0)]);
        assert!(cache.get_stale(&unknown).is_none());
        // predict entries never answer select queries
        let select = CacheKey::select("p", 5, 0, &[vec![spec("a", "b", 1.0)]]);
        assert!(cache.get_stale(&select).is_none());
    }

    #[test]
    fn periodic_purge_reclaims_without_explicit_calls() {
        let cache = ForecastCache::new(4096);
        // epoch 0 entries, then a stream of epoch-1 inserts: the periodic
        // purge must reclaim the epoch-0 entries without purge_stale.
        for i in 0..8 {
            cache.insert(
                CacheKey::predict("p", 0, 0, &[spec("a", "b", i as f64)]),
                CachedResult::Predict(Arc::new(vec![0.0])),
            );
        }
        for i in 0..70 {
            cache.insert(
                CacheKey::predict("p", 1, 0, &[spec("a", "b", i as f64)]),
                CachedResult::Predict(Arc::new(vec![1.0])),
            );
        }
        let epoch0 = CacheKey::predict("p", 0, 0, &[spec("a", "b", 0.0)]);
        assert!(cache.peek(&epoch0).is_none(), "periodic purge dropped epoch 0");
        assert!(cache.len() <= 70);
    }

    #[test]
    fn insert_if_drops_invalid_results() {
        let cache = ForecastCache::new(8);
        let k = CacheKey::predict("p", 0, 7, &[spec("a", "b", 1.0)]);
        cache.insert_if(
            k.clone(),
            CachedResult::Predict(Arc::new(vec![1.0])),
            None,
            || false,
        );
        assert!(cache.peek(&k).is_none(), "invalid insert must be dropped");
        cache.insert_if(
            k.clone(),
            CachedResult::Predict(Arc::new(vec![1.0])),
            None,
            || true,
        );
        assert!(cache.peek(&k).is_some());
    }

    #[test]
    fn footprint_is_part_of_the_key_and_of_same_query() {
        let cache = ForecastCache::with_retention(8, 4);
        let plain = CacheKey::predict("p", 1, 0, &[spec("a", "b", 1.0)]);
        let degraded = CacheKey::predict("p", 1, 99, &[spec("a", "b", 1.0)]);
        assert_ne!(plain, degraded);
        cache.insert(plain, CachedResult::Predict(Arc::new(vec![1.0])));
        // Stale lookups must not cross footprints: an answer computed
        // under a different overlay is wrong, not stale.
        let fresh_degraded = CacheKey::predict("p", 2, 99, &[spec("a", "b", 1.0)]);
        assert!(cache.get_stale(&fresh_degraded).is_none());
        let fresh_plain = CacheKey::predict("p", 2, 0, &[spec("a", "b", 1.0)]);
        assert!(cache.get_stale(&fresh_plain).is_some());
    }

    #[test]
    fn invalidate_link_evicts_only_crossing_entries_of_the_platform() {
        let cache = ForecastCache::new(8);
        let routes = |r: &[u32]| Some(Arc::from(r));
        let crossing = CacheKey::predict("p", 0, 0, &[spec("a", "b", 1.0)]);
        let disjoint = CacheKey::predict("p", 0, 0, &[spec("c", "d", 1.0)]);
        let other_platform = CacheKey::predict("q", 0, 0, &[spec("a", "b", 1.0)]);
        let unrouted = CacheKey::predict("p", 0, 0, &[spec("e", "f", 1.0)]);
        let v = || CachedResult::Predict(Arc::new(vec![0.0]));
        cache.insert_if(crossing.clone(), v(), routes(&[2, 5, 9]), || true);
        cache.insert_if(disjoint.clone(), v(), routes(&[1, 3]), || true);
        cache.insert_if(other_platform.clone(), v(), routes(&[2, 5]), || true);
        cache.insert_if(unrouted.clone(), v(), None, || true);

        assert_eq!(cache.invalidate_link("p", 5), 1, "only the crossing entry");
        assert!(cache.peek(&crossing).is_none());
        assert!(cache.peek(&disjoint).is_some());
        assert!(cache.peek(&other_platform).is_some(), "platforms are independent");
        assert!(cache.peek(&unrouted).is_some(), "unrouted entries are spared");
        assert_eq!(cache.invalidated_targeted(), 1);
        assert_eq!(cache.invalidate_link("p", 999), 0);
        // epoch purges count on the other counter
        cache.purge_stale(1);
        assert_eq!(cache.invalidated_epoch(), 3);
    }

    #[test]
    fn shed_and_coalesced_counters_accumulate() {
        let cache = ForecastCache::new(4);
        cache.note_shed();
        cache.note_shed();
        cache.note_coalesced();
        assert_eq!((cache.shed(), cache.coalesced(), cache.stale_served()), (2, 1, 0));
    }
}
