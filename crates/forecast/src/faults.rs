//! Deterministic fault injection for chaos-testing the serving stack.
//!
//! Production forecast serving must survive latency spikes, worker
//! panics and clients that vanish mid-response. Reproducing those
//! conditions with real nondeterminism makes failures unreproducible, so
//! this module derives every fault decision from a *seed*: the k-th
//! injection point of a run (`seq = k`) always receives the same fault
//! for the same [`FaultPlan`], no matter how threads interleave. A chaos
//! test that fails can be re-run bit-identically from its seed.
//!
//! Two layers use it:
//!
//! * the engine's simulation entry point asks the installed
//!   [`FaultInjector`] for a fault before each leader computation
//!   ([`crate::ForecastEngine::set_fault_injector`]) — exercising
//!   singleflight leader panics and slow computations under followers;
//! * HTTP-level tests wrap handlers with [`FaultInjector::step`] directly
//!   to inject delays/panics between parse and respond.
//!
//! Faults are *observable*: the injector counts what it actually
//! injected, so tests can assert "exactly the injected panics were
//! absorbed" against [`exec::WorkerPool::panics_caught`] and the server's
//! handler-panic counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault at this injection point.
    None,
    /// Sleep this long before proceeding (latency spike / slow leader).
    Delay(Duration),
    /// Sleep `after`, then panic (mid-computation worker death).
    Panic {
        /// Delay before the panic — lets a test park followers on the
        /// in-flight computation before the leader dies.
        after: Duration,
    },
    /// Fire the installed flap hook (a serving-time platform event —
    /// typically a link capacity change or down/up toggle delivered
    /// through `ForecastEngine::link_event`), then proceed normally.
    /// With no hook installed this is [`Fault::None`].
    Flap,
}

fn mix(seed: u64, seq: u64) -> u64 {
    // splitmix64 over seed ⊕ golden-ratio-spread seq: one well-mixed
    // word per injection point, independent of thread interleaving.
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A pure, seed-derived schedule of faults: injection point `seq` →
/// [`Fault`]. Probabilities are per-mille; explicit [`FaultPlan::force`]
/// entries override the derived decision (for pinpoint scenarios like
/// "the first simulation's leader panics").
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    delay_permille: u32,
    delay: Duration,
    panic_permille: u32,
    panic_after: Duration,
    flap_permille: u32,
    forced: Vec<(u64, Fault)>,
}

impl FaultPlan {
    /// A plan with no faults (builder starting point).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Injects `delay` at roughly `permille`/1000 of injection points.
    pub fn with_delays(mut self, permille: u32, delay: Duration) -> FaultPlan {
        self.delay_permille = permille.min(1000);
        self.delay = delay;
        self
    }

    /// Injects a panic (after `after`) at roughly `permille`/1000 of the
    /// points left fault-free by the delay rate.
    pub fn with_panics(mut self, permille: u32, after: Duration) -> FaultPlan {
        self.panic_permille = permille.min(1000);
        self.panic_after = after;
        self
    }

    /// Fires the flap hook at roughly `permille`/1000 of the points left
    /// fault-free by the panic and delay rates.
    pub fn with_flaps(mut self, permille: u32) -> FaultPlan {
        self.flap_permille = permille.min(1000);
        self
    }

    /// Pins injection point `seq` to `fault`, overriding the derived
    /// decision.
    pub fn force(mut self, seq: u64, fault: Fault) -> FaultPlan {
        self.forced.retain(|(s, _)| *s != seq);
        self.forced.push((seq, fault));
        self
    }

    /// The fault scheduled at injection point `seq` (pure).
    pub fn fault_for(&self, seq: u64) -> Fault {
        if let Some((_, f)) = self.forced.iter().find(|(s, _)| *s == seq) {
            return f.clone();
        }
        let roll = (mix(self.seed, seq) % 1000) as u32;
        if roll < self.panic_permille {
            Fault::Panic { after: self.panic_after }
        } else if roll < self.panic_permille + self.delay_permille {
            Fault::Delay(self.delay)
        } else if roll < self.panic_permille + self.delay_permille + self.flap_permille {
            Fault::Flap
        } else {
            Fault::None
        }
    }
}

/// A flap action: receives the ordinal of the flap (0 for the first
/// flap injected, 1 for the second, …) so a test can script a
/// deterministic event sequence (degrade, restore, degrade harder, …).
type FlapHook = Box<dyn Fn(u64) + Send + Sync>;

/// Interior cell for the installed flap hook (closures have no `Debug`).
#[derive(Default)]
struct HookCell(parking_lot::Mutex<Option<FlapHook>>);

impl std::fmt::Debug for HookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.lock().is_some() { "FlapHook(installed)" } else { "FlapHook(none)" })
    }
}

/// Hands out injection points in arrival order and applies the plan's
/// fault at each one, counting what it injected.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    seq: AtomicU64,
    delays: AtomicU64,
    panics: AtomicU64,
    flaps: AtomicU64,
    flap_hook: HookCell,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, ..FaultInjector::default() }
    }

    /// Installs (or clears) the action fired by [`Fault::Flap`] points.
    /// The hook receives the flap ordinal; chaos tests use it to apply
    /// a scripted `link_event` sequence mid-serving.
    pub fn set_flap_hook(&self, hook: Option<FlapHook>) {
        *self.flap_hook.0.lock() = hook;
    }

    /// Claims the next injection point and applies its fault: sleeps for
    /// delays, panics for panics (after their `after` sleep), fires the
    /// flap hook for flaps. Counters are updated *before* the effect, so
    /// a panic is counted even though `step` never returns from it.
    pub fn step(&self) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        match self.plan.fault_for(seq) {
            Fault::None => {}
            Fault::Delay(d) => {
                self.delays.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(d);
            }
            Fault::Panic { after } => {
                self.panics.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(after);
                panic!("injected fault at injection point {seq}");
            }
            Fault::Flap => {
                let ordinal = self.flaps.fetch_add(1, Ordering::SeqCst);
                let hook = self.flap_hook.0.lock();
                if let Some(h) = hook.as_ref() {
                    h(ordinal);
                }
            }
        }
    }

    /// Injection points claimed so far.
    pub fn steps(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Delays injected so far.
    pub fn delays_injected(&self) -> u64 {
        self.delays.load(Ordering::SeqCst)
    }

    /// Panics injected so far.
    pub fn panics_injected(&self) -> u64 {
        self.panics.load(Ordering::SeqCst)
    }

    /// Flap points hit so far (counted whether or not a hook was
    /// installed).
    pub fn flaps_injected(&self) -> u64 {
        self.flaps.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Instant;

    #[test]
    fn schedule_is_deterministic_in_seq_not_arrival() {
        let plan = FaultPlan::new(42)
            .with_delays(300, Duration::from_millis(1))
            .with_panics(100, Duration::ZERO);
        let again = plan.clone();
        for seq in 0..256 {
            assert_eq!(plan.fault_for(seq), again.fault_for(seq));
        }
        // different seeds disagree somewhere in a reasonable window
        let other = FaultPlan::new(43)
            .with_delays(300, Duration::from_millis(1))
            .with_panics(100, Duration::ZERO);
        assert!((0..256).any(|s| plan.fault_for(s) != other.fault_for(s)));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::new(7).with_delays(500, Duration::ZERO);
        let delays = (0..2000).filter(|&s| plan.fault_for(s) != Fault::None).count();
        assert!((700..1300).contains(&delays), "≈50% expected, got {delays}/2000");
        let quiet = FaultPlan::new(7);
        assert!((0..2000).all(|s| quiet.fault_for(s) == Fault::None));
    }

    #[test]
    fn force_overrides_and_injector_counts() {
        let plan = FaultPlan::new(0)
            .force(0, Fault::Delay(Duration::from_millis(30)))
            .force(1, Fault::Panic { after: Duration::ZERO })
            .force(1, Fault::None); // later force wins
        let inj = FaultInjector::new(plan);
        let t0 = Instant::now();
        inj.step(); // forced delay
        assert!(t0.elapsed() >= Duration::from_millis(25));
        inj.step(); // forced back to None
        assert_eq!(inj.steps(), 2);
        assert_eq!(inj.delays_injected(), 1);
        assert_eq!(inj.panics_injected(), 0);
    }

    #[test]
    fn flap_points_fire_the_hook_in_ordinal_order() {
        let inj = FaultInjector::new(
            FaultPlan::new(0).force(1, Fault::Flap).force(3, Fault::Flap),
        );
        inj.step(); // None — no flap, no hook needed yet
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        inj.set_flap_hook(Some(Box::new(move |o| sink.lock().push(o))));
        inj.step(); // flap #0
        inj.step(); // None
        inj.step(); // flap #1
        assert_eq!(inj.flaps_injected(), 2);
        assert_eq!(*seen.lock(), vec![0, 1]);
        inj.set_flap_hook(None);
    }

    #[test]
    fn panic_faults_panic_and_are_counted_first() {
        let inj = FaultInjector::new(
            FaultPlan::new(0).force(0, Fault::Panic { after: Duration::ZERO }),
        );
        let r = catch_unwind(AssertUnwindSafe(|| inj.step()));
        assert!(r.is_err());
        assert_eq!(inj.panics_injected(), 1);
    }
}
