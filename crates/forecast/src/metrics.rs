//! The engine's instrument bundle: per-stage latency histograms plus
//! kernel work counters, all shared-handle `telemetry` instruments.
//!
//! The bundle exists from engine construction — instrumentation is
//! always on, never conditionally compiled — and
//! [`ForecastMetrics::register`] adopts every instrument into a
//! [`MetricsRegistry`] so `/pilgrim/metrics` exposes them. Stage
//! histograms follow the request through the serving path:
//!
//! `admission → cache_lookup → coalesce_wait → simulate → render`
//!
//! `admission` and `render` are recorded by the service layer (they
//! bracket work the engine never sees); the middle three are recorded
//! here. Kernel counters aggregate the [`simflow::KernelStats`] each
//! simulation returns — the kernel itself counts plain integers and
//! never touches an atomic or a clock inside the solve; sessions fold
//! the per-run totals into these shared counters *after* `run()`
//! returns, off the hot path.

use simflow::{KernelStats, RouteMemoStats, COMP_SIZE_BUCKETS};
use telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Shared counters aggregating kernel work across every simulation the
/// engine runs (all platforms, all sessions — one process-wide family).
#[derive(Clone, Default, Debug)]
pub struct KernelCounters {
    /// Sharing re-solves across all simulations.
    pub reshares: Counter,
    /// Calendar pops (real completions + stale discards).
    pub calendar_pops: Counter,
    /// Components dispatched to the solver.
    pub components_solved: Counter,
    /// Component sizes (flows per dispatched component). Fed from the
    /// kernel's log2 buckets, so values land on powers of two.
    pub component_size: Histogram,
    /// Warm-replay levels applied verbatim.
    pub warm_levels_replayed: Counter,
    /// Warm-replay levels skipped because the component split.
    pub warm_levels_skipped_split: Counter,
    /// Levels abandoned: dirty-ratio guard tripped.
    pub warm_invalidated_dirty_ratio: Counter,
    /// Levels abandoned: seed-capacity mismatch.
    pub warm_invalidated_seed_cap: Counter,
    /// Levels abandoned: a binding resource went dirty.
    pub warm_invalidated_bind_dirty: Counter,
    /// Levels abandoned: a frozen flow changed.
    pub warm_invalidated_frozen_flow: Counter,
    /// Completion-calendar length high-water mark of the most recent
    /// finished run (a memory proxy: entries are 16 bytes each).
    pub calendar_peak: Gauge,
    /// Warm-start cache resident bytes as of the most recent finished
    /// run.
    pub warm_bytes: Gauge,
    /// Hierarchical route-memo hits across every route resolution (the
    /// platform counts monotonically; sessions fold the delta since
    /// their last fold — see [`KernelCounters::observe_route_memo`]).
    pub route_memo_hits: Counter,
    /// Memoized (cluster, cluster) route entries currently held by the
    /// most recently folded platform.
    pub route_memo_entries: Gauge,
}

impl KernelCounters {
    /// Folds one finished run's [`KernelStats`] into the shared
    /// counters. Called by sessions after `Simulation::run` returns.
    pub fn observe(&self, stats: &KernelStats) {
        self.reshares.add(stats.reshares);
        self.calendar_pops.add(stats.calendar_pops);
        let s = &stats.solver;
        self.components_solved.add(s.components_solved);
        for (k, &n) in s.component_size_log2.iter().enumerate().take(COMP_SIZE_BUCKETS) {
            if n > 0 {
                self.component_size.record_n(1u64 << k, n);
            }
        }
        let w = &s.warm;
        self.warm_levels_replayed.add(w.levels_replayed);
        self.warm_levels_skipped_split.add(w.levels_skipped_split);
        self.warm_invalidated_dirty_ratio.add(w.invalidated_dirty_ratio);
        self.warm_invalidated_seed_cap.add(w.invalidated_seed_cap);
        self.warm_invalidated_bind_dirty.add(w.invalidated_bind_dirty);
        self.warm_invalidated_frozen_flow.add(w.invalidated_frozen_flow);
        self.calendar_peak.set(stats.calendar_peak as i64);
        self.warm_bytes.set(stats.warm_bytes as i64);
    }

    /// Folds a platform's [`simflow::Platform::route_memo_stats`]
    /// snapshot, given the hit total at the previous fold (`prev_hits`).
    /// The platform counter is monotone, so the caller tracks its last
    /// folded value (e.g. with `AtomicU64::fetch_max`) and only the
    /// delta lands on the shared counter — route resolution happens
    /// outside the solve, so this never runs on the kernel's hot path.
    pub fn observe_route_memo(&self, memo: RouteMemoStats, prev_hits: u64) {
        if memo.hits > prev_hits {
            self.route_memo_hits.add(memo.hits - prev_hits);
        }
        self.route_memo_entries.set(memo.entries as i64);
    }

    /// Adopts the kernel family into `registry`.
    pub fn register(&self, registry: &MetricsRegistry) {
        registry.adopt_counter(
            "kernel_reshares_total",
            "Max-min sharing re-solves across all simulations",
            &[],
            &self.reshares,
        );
        registry.adopt_counter(
            "kernel_calendar_pops_total",
            "Completion-calendar pops (real completions and stale discards)",
            &[],
            &self.calendar_pops,
        );
        registry.adopt_counter(
            "kernel_components_solved_total",
            "Connected components dispatched to the max-min solver",
            &[],
            &self.components_solved,
        );
        registry.adopt_histogram(
            "kernel_component_size",
            "Flows per dispatched solver component (log2 buckets)",
            &[],
            &self.component_size,
        );
        registry.adopt_counter(
            "kernel_warm_levels_replayed_total",
            "Warm-start bisection levels replayed verbatim",
            &[],
            &self.warm_levels_replayed,
        );
        registry.adopt_counter(
            "kernel_warm_levels_skipped_total",
            "Warm-start levels skipped because the component split",
            &[("reason", "split")],
            &self.warm_levels_skipped_split,
        );
        let inval = [
            ("dirty_ratio", &self.warm_invalidated_dirty_ratio),
            ("seed_cap", &self.warm_invalidated_seed_cap),
            ("bind_dirty", &self.warm_invalidated_bind_dirty),
            ("frozen_flow", &self.warm_invalidated_frozen_flow),
        ];
        for (reason, counter) in inval {
            registry.adopt_counter(
                "kernel_warm_levels_invalidated_total",
                "Warm-start levels abandoned to a fresh solve, by reason",
                &[("reason", reason)],
                counter,
            );
        }
        registry.adopt_gauge(
            "kernel_calendar_peak",
            "Completion-calendar length high-water mark of the latest run",
            &[],
            &self.calendar_peak,
        );
        registry.adopt_gauge(
            "kernel_warm_cache_bytes",
            "Warm-start cache resident bytes as of the latest run",
            &[],
            &self.warm_bytes,
        );
        registry.adopt_counter(
            "kernel_route_memo_hits_total",
            "Hierarchical (cluster, cluster) route-memo hits during route resolution",
            &[],
            &self.route_memo_hits,
        );
        registry.adopt_gauge(
            "kernel_route_memo_entries",
            "Memoized (cluster, cluster) route entries held by the latest platform",
            &[],
            &self.route_memo_entries,
        );
    }
}

/// The engine's full instrument bundle (see the module docs).
#[derive(Clone, Default, Debug)]
pub struct ForecastMetrics {
    /// Admission-control decision time (recorded by the service layer).
    pub stage_admission: Histogram,
    /// Cache key construction + lookup time.
    pub stage_cache_lookup: Histogram,
    /// Time followers block on a coalesced leader's computation.
    pub stage_coalesce_wait: Histogram,
    /// Leader computation time (simulation, sharding, selection replay).
    pub stage_simulate: Histogram,
    /// Response rendering time (recorded by the service layer).
    pub stage_render: Histogram,
    /// Leader computations started (cache misses that simulated).
    pub simulations: Counter,
    /// Kernel work aggregated across every simulation.
    pub kernel: KernelCounters,
}

impl ForecastMetrics {
    /// Adopts every instrument into `registry`.
    pub fn register(&self, registry: &MetricsRegistry) {
        const STAGE_HELP: &str =
            "Per-stage forecast serving latency in nanoseconds (wall time)";
        let stages = [
            ("admission", &self.stage_admission),
            ("cache_lookup", &self.stage_cache_lookup),
            ("coalesce_wait", &self.stage_coalesce_wait),
            ("simulate", &self.stage_simulate),
            ("render", &self.stage_render),
        ];
        for (stage, hist) in stages {
            registry.adopt_histogram(
                "forecast_stage_latency_ns",
                STAGE_HELP,
                &[("stage", stage)],
                hist,
            );
        }
        registry.adopt_counter(
            "forecast_simulations_total",
            "Leader computations started (cache misses that actually simulated)",
            &[],
            &self.simulations,
        );
        self.kernel.register(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simflow::{KernelStats, SolverStats, WarmReplayStats};

    #[test]
    fn observe_folds_kernel_stats_into_counters() {
        let m = KernelCounters::default();
        let mut component_size_log2 = [0u64; COMP_SIZE_BUCKETS];
        component_size_log2[0] = 2; // two 1-flow components
        component_size_log2[3] = 1; // one 8..=15-flow component
        let solver = SolverStats {
            components_solved: 3,
            component_size_log2,
            warm: WarmReplayStats {
                levels_replayed: 7,
                levels_skipped_split: 1,
                invalidated_dirty_ratio: 2,
                invalidated_seed_cap: 0,
                invalidated_bind_dirty: 1,
                invalidated_frozen_flow: 0,
            },
        };
        let stats = KernelStats {
            reshares: 5,
            calendar_pops: 9,
            calendar_peak: 12,
            warm_bytes: 4096,
            solver,
        };
        m.observe(&stats);
        m.observe(&stats);
        assert_eq!(m.reshares.get(), 10);
        assert_eq!(m.calendar_pops.get(), 18);
        assert_eq!(m.calendar_peak.get(), 12);
        assert_eq!(m.warm_bytes.get(), 4096);
        assert_eq!(m.components_solved.get(), 6);
        assert_eq!(m.component_size.count(), 6);
        // 2×(2·1 + 1·8) = 20 total "flows" recorded
        assert_eq!(m.component_size.sum(), 20);
        assert_eq!(m.warm_levels_replayed.get(), 14);
        assert_eq!(m.warm_invalidated_dirty_ratio.get(), 4);
    }

    #[test]
    fn route_memo_folds_deltas_only() {
        let m = KernelCounters::default();
        m.observe_route_memo(RouteMemoStats { hits: 10, entries: 3, links: 9 }, 0);
        m.observe_route_memo(RouteMemoStats { hits: 25, entries: 4, links: 12 }, 10);
        // a stale prev (racing folder already consumed these hits) adds nothing
        m.observe_route_memo(RouteMemoStats { hits: 25, entries: 4, links: 12 }, 25);
        assert_eq!(m.route_memo_hits.get(), 25);
        assert_eq!(m.route_memo_entries.get(), 4);
    }

    #[test]
    fn register_exposes_all_families() {
        let registry = MetricsRegistry::new();
        let m = ForecastMetrics::default();
        m.register(&registry);
        m.stage_simulate.record(1000);
        m.simulations.inc();
        let text = registry.render();
        for family in [
            "forecast_stage_latency_ns",
            "forecast_simulations_total",
            "kernel_reshares_total",
            "kernel_component_size",
            "kernel_warm_levels_invalidated_total",
            "kernel_calendar_peak",
            "kernel_warm_cache_bytes",
            "kernel_route_memo_hits_total",
            "kernel_route_memo_entries",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains(r#"stage="simulate""#));
        assert!(text.contains(r#"reason="frozen_flow""#));
    }
}
