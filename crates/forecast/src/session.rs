//! Warm per-platform simulation sessions.
//!
//! Building a [`Simulation`] involves two per-request costs the serving
//! path should not pay twice: constructing the solver capacity vector
//! (`O(links + hosts)`) and resolving routes (`O(zone depth)` per
//! endpoint pair). A [`Session`] amortizes both across queries against
//! the same platform: the capacity vector is built once, and every
//! resolved `(src, dst)` path is memoized. Sessions also carry the
//! *background traffic* of the current metrology epoch — flows injected
//! into every simulation to model load the forecast must coexist with —
//! resolved once when the epoch's data arrives, not per query.
//!
//! Two dynamic-platform pieces live here too:
//!
//! * a persistent [`Connectivity`] primed with the background flows,
//!   cloned per batch so request sharding does not re-attach the
//!   background on every query ([`Session::label_batch`]);
//! * a **link-state overlay**: capacity factors and down markers applied
//!   by [`Session::apply_link_event`] when the platform degrades at
//!   serving time. Every simulation built afterwards sees the degraded
//!   capacities (and dead resources) without any session rebuild, and
//!   [`Session::footprint`] digests the overlay *as seen from a route
//!   set* so the cache can key results by exactly the events that could
//!   affect them (see `crate::cache` for the invalidation contract).
//!
//! Sessions are shared (`Arc`) between HTTP workers and pool workers;
//! interior state is lock-protected and all of it is rebuildable, so a
//! session is never invalidated — only its background set and overlay
//! change.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use exec::WorkerPool;
use parking_lot::RwLock;
use simflow::{
    Connectivity, DeadRoutePolicy, HostId, LinkId, NetworkConfig, Platform, PlatformEventKind,
    ResolvedPath, SimTuning, Simulation,
};

use crate::metrics::KernelCounters;

use crate::engine::{ForecastError, TransferSpec};

/// Upper bound on memoized `(src, dst)` route resolutions per session
/// (see [`Session::resolve`]).
const ROUTE_CACHE_CAP: usize = 1 << 16;

/// A background flow: a resolved path plus the bytes in flight, injected
/// into every simulation of the session's platform.
#[derive(Clone, Debug)]
pub struct BackgroundFlow {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Bytes outstanding.
    pub size: f64,
    /// The resolved route.
    pub path: Arc<ResolvedPath>,
}

/// The overlay state of one degraded resource (identity — factor 1,
/// not down — is never stored; such entries are removed eagerly so an
/// empty overlay means a pristine platform).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkState {
    /// Capacity multiplier applied to the nominal capacity.
    pub factor: f64,
    /// Whether the resource is down (capacity zero, routes dead).
    pub down: bool,
}

/// Background flows and the connectivity primed with them, swapped
/// atomically as one unit so a batch never pairs the flows of one epoch
/// with the components of another.
struct BackgroundState {
    flows: Arc<Vec<BackgroundFlow>>,
    conn: Connectivity,
}

/// Warm scaffolding for one platform.
pub struct Session {
    platform: Arc<Platform>,
    config: NetworkConfig,
    /// Prebuilt solver capacity vector (see
    /// [`Simulation::shared_capacities`]); cloned into each simulation.
    capacities: Vec<f64>,
    /// Memoized route resolutions, keyed by endpoint pair.
    routes: RwLock<HashMap<(HostId, HostId), Arc<ResolvedPath>>>,
    /// Background flows of the current epoch plus the connectivity
    /// structure primed with them.
    background: RwLock<Arc<BackgroundState>>,
    /// Link-state overlay: solver resource id → degraded state. A
    /// `BTreeMap` so digest folds iterate in a canonical order.
    overlay: RwLock<BTreeMap<u32, LinkState>>,
    /// Bumped before every overlay mutation; lets the engine detect that
    /// a result it computed under one overlay is being cached under
    /// another (see `ForecastCache::insert_if`).
    overlay_version: AtomicU64,
    /// Pool shared with every simulation this session builds, so the
    /// solver's component fan-out runs on the engine's threads instead
    /// of oversubscribing the machine.
    pool: Option<Arc<WorkerPool>>,
    /// Shared kernel counters the session folds each finished run's
    /// [`simflow::KernelStats`] into — after `run()` returns, never
    /// inside the solve (the kernel counts plain integers and the
    /// determinism contract forbids clocks/atomics there).
    kernel: KernelCounters,
    /// The platform's route-memo hit total at this session's last fold;
    /// only the delta since then lands on the shared counter.
    memo_hits_seen: AtomicU64,
}

impl Session {
    /// Warms up a session for `platform`.
    pub fn new(platform: Arc<Platform>, config: NetworkConfig) -> Session {
        Session::with_pool(platform, config, None)
    }

    /// Warms up a session whose simulations share `pool` with the
    /// max-min solver (see [`simflow::SimTuning`]).
    pub fn with_pool(
        platform: Arc<Platform>,
        config: NetworkConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> Session {
        Session::with_instruments(platform, config, pool, KernelCounters::default())
    }

    /// [`Session::with_pool`] with caller-shared kernel counters: the
    /// engine hands every session clones of one process-wide
    /// [`KernelCounters`], so all platforms aggregate into the same
    /// `kernel_*` metric family.
    pub fn with_instruments(
        platform: Arc<Platform>,
        config: NetworkConfig,
        pool: Option<Arc<WorkerPool>>,
        kernel: KernelCounters,
    ) -> Session {
        let capacities = Simulation::shared_capacities(&platform, &config);
        let conn = Connectivity::new(capacities.len());
        Session {
            platform,
            config,
            capacities,
            routes: RwLock::new(HashMap::new()),
            background: RwLock::new(Arc::new(BackgroundState {
                flows: Arc::new(Vec::new()),
                conn,
            })),
            overlay: RwLock::new(BTreeMap::new()),
            overlay_version: AtomicU64::new(0),
            pool,
            kernel,
            memo_hits_seen: AtomicU64::new(0),
        }
    }

    /// The kernel counters this session aggregates into.
    pub fn kernel_metrics(&self) -> &KernelCounters {
        &self.kernel
    }

    /// The platform this session simulates.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// Number of solver resources on this platform (links + host CPUs) —
    /// the id space of [`simflow::ResolvedPath::resources`], needed by
    /// connectivity labeling over resolved routes.
    pub fn resource_count(&self) -> usize {
        self.capacities.len()
    }

    /// The model configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Number of memoized routes (observability / tests).
    pub fn routes_cached(&self) -> usize {
        self.routes.read().len()
    }

    /// The current background flows.
    pub fn background(&self) -> Arc<Vec<BackgroundFlow>> {
        Arc::clone(&self.background.read().flows)
    }

    /// Replaces the background flows (new metrology epoch) and re-primes
    /// the batch-labeling connectivity with them. The caller (the
    /// engine) is responsible for bumping the epoch so cached results
    /// keyed to the old background become unreachable.
    pub fn set_background(&self, flows: Vec<BackgroundFlow>) {
        let mut conn = Connectivity::new(self.capacities.len());
        conn.ensure_flows(flows.len());
        for (i, f) in flows.iter().enumerate() {
            if !f.path.resources.is_empty() {
                conn.attach(i as u32, &f.path.resources);
            }
        }
        *self.background.write() = Arc::new(BackgroundState { flows: Arc::new(flows), conn });
    }

    /// Labels the current background flows plus `requests` with dense
    /// component ids (exactly [`Connectivity::label_batch`] over the
    /// combined `background ++ requests` list), cloning the primed
    /// connectivity instead of re-attaching every background flow.
    /// Returns the background snapshot the labels were computed against
    /// — labels index into `flows ++ requests` in that order.
    pub fn label_batch(&self, requests: &[&[u32]]) -> (Arc<Vec<BackgroundFlow>>, Vec<usize>) {
        let state = Arc::clone(&*self.background.read());
        let mut items: Vec<&[u32]> = Vec::with_capacity(state.flows.len() + requests.len());
        items.extend(state.flows.iter().map(|f| f.path.resources.as_slice()));
        items.extend_from_slice(requests);
        let labels = state.conn.clone().label_items(state.flows.len(), &items);
        (Arc::clone(&state.flows), labels)
    }

    /// Applies a serving-time platform event to the overlay and returns
    /// the solver resource id it landed on. `Capacity(f)` sets the
    /// factor, `Down`/`Up` toggle the down marker; an entry restored to
    /// identity is removed, so digests return to their pre-event values
    /// and previously cached entries become reachable again. The version
    /// counter is bumped *before* the overlay changes — any in-flight
    /// computation that snapshotted the old version fails its insert
    /// validity check rather than caching a result under the wrong key.
    pub fn apply_link_event(&self, link: LinkId, kind: PlatformEventKind) -> u32 {
        let resource = link.index() as u32;
        self.overlay_version.fetch_add(1, Ordering::SeqCst);
        let mut overlay = self.overlay.write();
        let e = overlay.entry(resource).or_insert(LinkState { factor: 1.0, down: false });
        match kind {
            PlatformEventKind::Capacity(f) => e.factor = f,
            PlatformEventKind::Down => e.down = true,
            PlatformEventKind::Up => e.down = false,
        }
        if e.factor == 1.0 && !e.down {
            overlay.remove(&resource);
        }
        resource
    }

    /// The overlay mutation counter (see [`Session::apply_link_event`]).
    pub fn overlay_version(&self) -> u64 {
        self.overlay_version.load(Ordering::SeqCst)
    }

    /// Number of degraded resources in the overlay (observability).
    pub fn overlay_len(&self) -> usize {
        self.overlay.read().len()
    }

    /// Digest of the overlay *as seen from* `resources` (a query's route
    /// union): folds every overlay entry whose resource shares a
    /// background-connectivity component with the query routes, in
    /// canonical (ascending resource) order. Two properties the cache
    /// key relies on:
    ///
    /// * **0 when nothing relevant is degraded** — an empty overlay, or
    ///   one whose entries are all component-disjoint from the query
    ///   (directly *and* through background coupling), digests to 0, so
    ///   entries cached before any event stay reachable for unaffected
    ///   routes.
    /// * **Restores round-trip** — identity entries are removed by
    ///   [`Session::apply_link_event`], so after a full restore the
    ///   digest returns to its pre-event value and the original cached
    ///   entries validly hit again.
    pub fn footprint(&self, resources: &[u32]) -> u64 {
        let overlay = self.overlay.read();
        if overlay.is_empty() {
            return 0;
        }
        let state = Arc::clone(&*self.background.read());
        let mut roots: Vec<u32> = resources.iter().map(|&r| state.conn.root(r)).collect();
        roots.sort_unstable();
        roots.dedup();
        let mut h = 0u64;
        for (&r, ls) in overlay.iter() {
            if roots.binary_search(&state.conn.root(r)).is_err() {
                continue;
            }
            h = splitmix(h ^ splitmix(r as u64 + 1));
            h = splitmix(h ^ ls.factor.to_bits());
            h = splitmix(h ^ ls.down as u64);
        }
        h
    }

    /// Looks a host up by name.
    pub fn host(&self, name: &str) -> Result<HostId, ForecastError> {
        self.platform
            .host_by_name(name)
            .ok_or_else(|| ForecastError::UnknownHost(name.to_string()))
    }

    /// The memoized route resolution between two hosts. The per-pair map
    /// is capped at [`ROUTE_CACHE_CAP`] entries — on a 100k-host platform
    /// the pair space is ~10¹⁰, so an uncapped map under adversarial or
    /// merely broad traffic would grow without bound; past the cap,
    /// resolutions still succeed (and still benefit from the platform's
    /// own cluster-pair route memo) but are not retained here.
    pub fn resolve(&self, src: HostId, dst: HostId) -> Result<Arc<ResolvedPath>, ForecastError> {
        if let Some(p) = self.routes.read().get(&(src, dst)) {
            return Ok(Arc::clone(p));
        }
        let path = Arc::new(
            ResolvedPath::resolve(&self.platform, &self.config, src, dst)
                .map_err(ForecastError::Sim)?,
        );
        let mut w = self.routes.write();
        if w.len() >= ROUTE_CACHE_CAP {
            return Ok(w.get(&(src, dst)).map(Arc::clone).unwrap_or(path));
        }
        // A racing resolver may have inserted meanwhile; keep the first
        // entry so every caller shares one allocation.
        Ok(Arc::clone(w.entry((src, dst)).or_insert(path)))
    }

    /// Resolves a request tuple: host names, size validity, route.
    pub fn resolve_spec(&self, spec: &TransferSpec) -> Result<ResolvedSpec, ForecastError> {
        if !spec.size.is_finite() || spec.size < 0.0 {
            return Err(ForecastError::BadSize(spec.size));
        }
        let src = self.host(&spec.src)?;
        let dst = self.host(&spec.dst)?;
        let path = self.resolve(src, dst)?;
        Ok(ResolvedSpec { src, dst, size: spec.size, path })
    }

    /// A fresh simulation using the prewarmed capacity vector (and the
    /// session's shared pool, when it has one), with the link-state
    /// overlay applied: degraded factors scale the capacity vector, down
    /// resources are marked dead under [`DeadRoutePolicy::Fail`] — a
    /// transfer routed over a dead link completes as failed rather than
    /// stalling the simulation.
    pub fn simulation(&self) -> Simulation<'_> {
        let tuning = SimTuning { pool: self.pool.clone(), warm_start: true };
        let overlay = self.overlay.read();
        if overlay.is_empty() {
            drop(overlay);
            return Simulation::with_tuning(
                &self.platform,
                self.config,
                self.capacities.clone(),
                tuning,
            );
        }
        let mut caps = self.capacities.clone();
        let mut downs = Vec::new();
        for (&r, ls) in overlay.iter() {
            caps[r as usize] *= ls.factor;
            if ls.down {
                downs.push(r);
            }
        }
        drop(overlay);
        let mut sim = Simulation::with_tuning(&self.platform, self.config, caps, tuning);
        sim.set_dead_route_policy(DeadRoutePolicy::Fail);
        for r in downs {
            sim.mark_resource_down(r);
        }
        sim
    }

    /// Runs one simulation of the selected background flows and request
    /// specs (all starting at t=0) and returns the durations of the
    /// selected specs, in `spec_idx` order. Background flows are added
    /// first, then requests — the same insertion order for a subset as
    /// for the whole batch, which is what makes component-sharded
    /// execution bit-identical to one monolithic simulation. A spec that
    /// fails (its route crosses a dead resource) reports an infinite
    /// duration.
    pub fn simulate_subset(
        &self,
        background: &[BackgroundFlow],
        bg_idx: &[usize],
        specs: &[ResolvedSpec],
        spec_idx: &[usize],
    ) -> Result<Vec<f64>, ForecastError> {
        let mut sim = self.simulation();
        for &b in bg_idx {
            let b = &background[b];
            sim.add_transfer_resolved(b.src, b.dst, b.size, simflow::SimTime::ZERO, &b.path);
        }
        let ids: Vec<_> = spec_idx
            .iter()
            .map(|&i| {
                let s = &specs[i];
                sim.add_transfer_resolved(s.src, s.dst, s.size, simflow::SimTime::ZERO, &s.path)
            })
            .collect();
        let report = sim.run().map_err(ForecastError::Sim)?;
        self.kernel.observe(&report.stats);
        // Fold the platform's route-memo counters (delta since this
        // session's last fold; `fetch_max` keeps racing folders from
        // double-counting). Resolution runs at add-transfer time, so this
        // is off the solve path like every other fold here.
        let memo = self.platform.route_memo_stats();
        let prev = self.memo_hits_seen.fetch_max(memo.hits, Ordering::Relaxed);
        self.kernel.observe_route_memo(memo, prev);
        Ok(ids
            .iter()
            .map(|id| {
                let c = report.completion(*id);
                if c.failed() {
                    f64::INFINITY
                } else {
                    c.duration().as_secs()
                }
            })
            .collect())
    }
}

/// SplitMix64 finalizer — the overlay digest's mixing function.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fully resolved transfer request, ready to drop into a simulation.
#[derive(Clone, Debug)]
pub struct ResolvedSpec {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Transfer size in bytes.
    pub size: f64,
    /// Resolved route.
    pub path: Arc<ResolvedPath>,
}
