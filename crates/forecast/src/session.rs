//! Warm per-platform simulation sessions.
//!
//! Building a [`Simulation`] involves two per-request costs the serving
//! path should not pay twice: constructing the solver capacity vector
//! (`O(links + hosts)`) and resolving routes (`O(zone depth)` per
//! endpoint pair). A [`Session`] amortizes both across queries against
//! the same platform: the capacity vector is built once, and every
//! resolved `(src, dst)` path is memoized. Sessions also carry the
//! *background traffic* of the current metrology epoch — flows injected
//! into every simulation to model load the forecast must coexist with —
//! resolved once when the epoch's data arrives, not per query.
//!
//! Sessions are shared (`Arc`) between HTTP workers and pool workers;
//! interior state is lock-protected and all of it is rebuildable, so a
//! session is never invalidated — only its background set changes.

use std::collections::HashMap;
use std::sync::Arc;

use exec::WorkerPool;
use parking_lot::RwLock;
use simflow::{HostId, NetworkConfig, Platform, ResolvedPath, SimTuning, Simulation};

use crate::engine::{ForecastError, TransferSpec};

/// A background flow: a resolved path plus the bytes in flight, injected
/// into every simulation of the session's platform.
#[derive(Clone, Debug)]
pub struct BackgroundFlow {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Bytes outstanding.
    pub size: f64,
    /// The resolved route.
    pub path: Arc<ResolvedPath>,
}

/// Warm scaffolding for one platform.
pub struct Session {
    platform: Arc<Platform>,
    config: NetworkConfig,
    /// Prebuilt solver capacity vector (see
    /// [`Simulation::shared_capacities`]); cloned into each simulation.
    capacities: Vec<f64>,
    /// Memoized route resolutions, keyed by endpoint pair.
    routes: RwLock<HashMap<(HostId, HostId), Arc<ResolvedPath>>>,
    /// Background flows of the current epoch.
    background: RwLock<Arc<Vec<BackgroundFlow>>>,
    /// Pool shared with every simulation this session builds, so the
    /// solver's component fan-out runs on the engine's threads instead
    /// of oversubscribing the machine.
    pool: Option<Arc<WorkerPool>>,
}

impl Session {
    /// Warms up a session for `platform`.
    pub fn new(platform: Arc<Platform>, config: NetworkConfig) -> Session {
        Session::with_pool(platform, config, None)
    }

    /// Warms up a session whose simulations share `pool` with the
    /// max-min solver (see [`simflow::SimTuning`]).
    pub fn with_pool(
        platform: Arc<Platform>,
        config: NetworkConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> Session {
        let capacities = Simulation::shared_capacities(&platform, &config);
        Session {
            platform,
            config,
            capacities,
            routes: RwLock::new(HashMap::new()),
            background: RwLock::new(Arc::new(Vec::new())),
            pool,
        }
    }

    /// The platform this session simulates.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// Number of solver resources on this platform (links + host CPUs) —
    /// the id space of [`simflow::ResolvedPath::resources`], needed by
    /// connectivity labeling over resolved routes.
    pub fn resource_count(&self) -> usize {
        self.capacities.len()
    }

    /// The model configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Number of memoized routes (observability / tests).
    pub fn routes_cached(&self) -> usize {
        self.routes.read().len()
    }

    /// The current background flows.
    pub fn background(&self) -> Arc<Vec<BackgroundFlow>> {
        self.background.read().clone()
    }

    /// Replaces the background flows (new metrology epoch). The caller
    /// (the engine) is responsible for bumping the epoch so cached
    /// results keyed to the old background become unreachable.
    pub fn set_background(&self, flows: Vec<BackgroundFlow>) {
        *self.background.write() = Arc::new(flows);
    }

    /// Looks a host up by name.
    pub fn host(&self, name: &str) -> Result<HostId, ForecastError> {
        self.platform
            .host_by_name(name)
            .ok_or_else(|| ForecastError::UnknownHost(name.to_string()))
    }

    /// The memoized route resolution between two hosts.
    pub fn resolve(&self, src: HostId, dst: HostId) -> Result<Arc<ResolvedPath>, ForecastError> {
        if let Some(p) = self.routes.read().get(&(src, dst)) {
            return Ok(Arc::clone(p));
        }
        let path = Arc::new(
            ResolvedPath::resolve(&self.platform, &self.config, src, dst)
                .map_err(ForecastError::Sim)?,
        );
        let mut w = self.routes.write();
        // A racing resolver may have inserted meanwhile; keep the first
        // entry so every caller shares one allocation.
        Ok(Arc::clone(w.entry((src, dst)).or_insert(path)))
    }

    /// Resolves a request tuple: host names, size validity, route.
    pub fn resolve_spec(&self, spec: &TransferSpec) -> Result<ResolvedSpec, ForecastError> {
        if !spec.size.is_finite() || spec.size < 0.0 {
            return Err(ForecastError::BadSize(spec.size));
        }
        let src = self.host(&spec.src)?;
        let dst = self.host(&spec.dst)?;
        let path = self.resolve(src, dst)?;
        Ok(ResolvedSpec { src, dst, size: spec.size, path })
    }

    /// A fresh simulation using the prewarmed capacity vector (and the
    /// session's shared pool, when it has one).
    pub fn simulation(&self) -> Simulation<'_> {
        let tuning = SimTuning { pool: self.pool.clone(), warm_start: true };
        Simulation::with_tuning(&self.platform, self.config, self.capacities.clone(), tuning)
    }

    /// Runs one simulation of the selected background flows and request
    /// specs (all starting at t=0) and returns the durations of the
    /// selected specs, in `spec_idx` order. Background flows are added
    /// first, then requests — the same insertion order for a subset as
    /// for the whole batch, which is what makes component-sharded
    /// execution bit-identical to one monolithic simulation.
    pub fn simulate_subset(
        &self,
        background: &[BackgroundFlow],
        bg_idx: &[usize],
        specs: &[ResolvedSpec],
        spec_idx: &[usize],
    ) -> Result<Vec<f64>, ForecastError> {
        let mut sim = self.simulation();
        for &b in bg_idx {
            let b = &background[b];
            sim.add_transfer_resolved(b.src, b.dst, b.size, simflow::SimTime::ZERO, &b.path);
        }
        let ids: Vec<_> = spec_idx
            .iter()
            .map(|&i| {
                let s = &specs[i];
                sim.add_transfer_resolved(s.src, s.dst, s.size, simflow::SimTime::ZERO, &s.path)
            })
            .collect();
        let report = sim.run().map_err(ForecastError::Sim)?;
        Ok(ids.iter().map(|id| report.duration(*id).as_secs()).collect())
    }
}

/// A fully resolved transfer request, ready to drop into a simulation.
#[derive(Clone, Debug)]
pub struct ResolvedSpec {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Transfer size in bytes.
    pub size: f64,
    /// Resolved route.
    pub path: Arc<ResolvedPath>,
}
