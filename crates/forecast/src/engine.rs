//! The concurrent forecast engine.
//!
//! [`ForecastEngine`] is the serving core that turns the paper's
//! per-request "build a simulation, run it, throw it away" loop into
//! something that can take heavy concurrent traffic:
//!
//! * all simulation work runs on a shared [`WorkerPool`]
//!   (`crate::pool`), never on the caller's thread beyond orchestration;
//! * per-platform scaffolding (capacity vectors, resolved routes,
//!   background flows) lives in warm [`Session`]s (`crate::session`);
//! * results are memoized in an epoch-keyed [`ForecastCache`]
//!   (`crate::cache`) invalidated wholesale whenever new metrology data
//!   arrives ([`ForecastEngine::bump_epoch`]).
//!
//! ## Determinism
//!
//! Parallelism never changes answers:
//!
//! * `predict` shards a batch into *link-disjoint components* — groups
//!   of transfers (and background flows) that transitively share a
//!   saturable link, labeled by the same connectivity structure the
//!   max-min solver keeps internally ([`simflow::Connectivity`]).
//!   Max-min sharing couples flows only through shared resources, so
//!   simulating components separately is exact, and the per-request
//!   durations are merged back by request index.
//! * `select_fastest` simulates hypotheses in waves of pool width
//!   (cheapest lower bound first, skipping hypotheses that can no longer
//!   win), then *replays* the sequential prune/select decision procedure
//!   over the collected makespans. The wave skip is strictly more
//!   conservative than the sequential prune, so every hypothesis the
//!   replay needs has been simulated, and the returned winner, makespan
//!   and pruned set are identical to the sequential algorithm's.
//!
//! ## Singleflight coalescing
//!
//! Concurrent requests for the same canonical [`CacheKey`] (predict
//! *and* select) are **coalesced**: one request — the *leader* —
//! computes; the others block on the in-flight computation and receive
//! the same result. The determinism contract makes this sound: a
//! forecast is a pure function of `(platform, epoch, canonical query)`,
//! so the leader's answer *is* every follower's answer, bit for bit —
//! followers return the identical `Arc`, and upstream JSON rendering is
//! byte-identical to what each would have computed alone.
//!
//! The handoff is panic-safe: if the leader's computation panics, a drop
//! guard publishes an [`ForecastError::Internal`] outcome to the waiting
//! followers (no hang, no poisoned lock) while the panic keeps
//! propagating to the leader's caller. Error outcomes are shared with
//! the followers of the same flight but never cached, so the next
//! request retries the computation. Successful leaders insert into the
//! cache *before* retiring the flight, so a key absent from both the
//! cache and the flight table is guaranteed uncomputed — the
//! double-check in `coalesce` relies on exactly that ordering.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
// The singleflight table needs a condvar, which the available
// parking_lot build does not provide — std::sync with explicit
// poison-recovery (the exec pool does the same).
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::RwLock;
use simflow::{NetworkConfig, Platform, PlatformEventKind, SimError};
use telemetry::{MetricsRegistry, Span};

use crate::cache::{CacheKey, CachedResult, ForecastCache};
use crate::faults::FaultInjector;
use crate::metrics::ForecastMetrics;
use crate::pool::WorkerPool;
use crate::session::{BackgroundFlow, ResolvedSpec, Session};

/// One requested transfer: the 3-uple of the paper's API.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferSpec {
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// Transfer size in bytes.
    pub size: f64,
}

/// Engine errors (mirrors the service-level error surface).
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// No platform registered under this name.
    UnknownPlatform(String),
    /// A request references a host absent from the platform.
    UnknownHost(String),
    /// A request carries a negative or non-finite size.
    BadSize(f64),
    /// A link event references a link absent from the platform.
    UnknownLink(String),
    /// A link event carries a negative or non-finite capacity factor.
    BadFactor(f64),
    /// The simulation kernel failed.
    Sim(SimError),
    /// `select_fastest` needs at least one hypothesis.
    NoHypotheses,
    /// An engine-internal failure (e.g. a coalesced leader computation
    /// panicked); followers of a dead flight receive this instead of
    /// hanging.
    Internal(String),
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::UnknownPlatform(p) => write!(f, "unknown platform '{p}'"),
            ForecastError::UnknownHost(h) => write!(f, "unknown host '{h}'"),
            ForecastError::BadSize(s) => write!(f, "invalid transfer size {s}"),
            ForecastError::UnknownLink(l) => write!(f, "unknown link '{l}'"),
            ForecastError::BadFactor(x) => write!(f, "invalid capacity factor {x}"),
            ForecastError::Sim(e) => write!(f, "simulation error: {e}"),
            ForecastError::NoHypotheses => write!(f, "no hypotheses given"),
            ForecastError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ForecastError {}

impl From<SimError> for ForecastError {
    fn from(e: SimError) -> Self {
        ForecastError::Sim(e)
    }
}

/// Outcome of hypothesis selection, identical to the sequential
/// algorithm's by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Index of the winning hypothesis.
    pub best: usize,
    /// Makespan of the winning hypothesis, seconds.
    pub best_makespan: f64,
    /// Per-transfer durations of the winning hypothesis, in request order.
    pub durations: Vec<f64>,
    /// Indices of hypotheses skipped by the pruning heuristic, ascending.
    pub pruned: Vec<usize>,
}

/// Tuning knobs for [`ForecastEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads in the simulation pool. `0` means
    /// `available_parallelism`.
    pub workers: usize,
    /// Maximum number of cached forecast results.
    pub cache_capacity: usize,
    /// Trailing epochs the cache may retain for degraded-mode stale
    /// serving. `0` (the default) purges everything but the current
    /// epoch on each bump.
    pub stale_retention: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 0, cache_capacity: 4096, stale_retention: 0 }
    }
}

/// One in-flight coalesced computation: followers block on the condvar
/// until the leader (or its panic guard) publishes an outcome.
#[derive(Default)]
struct Flight {
    outcome: StdMutex<Option<Result<CachedResult, ForecastError>>>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Result<CachedResult, ForecastError> {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn complete(&self, outcome: Result<CachedResult, ForecastError>) {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(outcome);
        }
        drop(guard);
        self.cv.notify_all();
    }
}

/// The concurrent forecast engine: platforms, sessions, pool and cache.
pub struct ForecastEngine {
    config: NetworkConfig,
    /// Shared with every warm session (and through them with every
    /// simulation's solver), so batch-level and component-level fan-out
    /// draw from one set of threads.
    pool: Arc<WorkerPool>,
    sessions: RwLock<HashMap<String, Arc<Session>>>,
    cache: ForecastCache,
    /// Background-traffic epoch; bumped on metrology ingestion.
    epoch: AtomicU64,
    /// Singleflight table: canonical key → the in-flight computation
    /// concurrent duplicates should join.
    flights: StdMutex<HashMap<CacheKey, Arc<Flight>>>,
    /// Instrument bundle: per-stage latency histograms, the simulations
    /// counter, and the kernel work counters every session feeds.
    metrics: ForecastMetrics,
    /// Optional chaos hook applied at the start of each leader
    /// computation.
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

impl ForecastEngine {
    /// An engine with default tuning.
    pub fn new(config: NetworkConfig) -> ForecastEngine {
        ForecastEngine::with_engine_config(config, EngineConfig::default())
    }

    /// An engine with explicit tuning.
    pub fn with_engine_config(config: NetworkConfig, engine: EngineConfig) -> ForecastEngine {
        let pool = if engine.workers == 0 {
            WorkerPool::with_default_size()
        } else {
            WorkerPool::new(engine.workers)
        };
        ForecastEngine {
            config,
            pool: Arc::new(pool),
            sessions: RwLock::new(HashMap::new()),
            cache: ForecastCache::with_retention(engine.cache_capacity, engine.stale_retention),
            epoch: AtomicU64::new(0),
            flights: StdMutex::new(HashMap::new()),
            metrics: ForecastMetrics::default(),
            faults: RwLock::new(None),
        }
    }

    /// The engine's instrument bundle (stage histograms, simulations
    /// counter, kernel counters). Handles are cheap clones of shared
    /// atomics; the service layer records its `admission`/`render`
    /// stages through this.
    pub fn metrics(&self) -> &ForecastMetrics {
        &self.metrics
    }

    /// Adopts every engine-owned instrument into `registry`: the stage
    /// histograms and kernel counters, the cache's serving counters, and
    /// the shared worker pool's gauges.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        self.metrics.register(registry);
        self.cache.register_metrics(registry);
        self.pool.register_metrics(registry);
    }

    /// The model configuration in use.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// The shared worker pool (other subsystems may fan out through it).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// A shareable handle to the pool, e.g. for attaching to simulations
    /// built outside the engine ([`simflow::Simulation::attach_pool`]).
    pub fn shared_pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }

    /// Registers a platform under `name`, warming a session for it.
    pub fn register_platform(&self, name: &str, platform: Platform) {
        self.register_platform_shared(name, Arc::new(platform));
    }

    /// Registers an already-shared platform under `name`.
    pub fn register_platform_shared(&self, name: &str, platform: Arc<Platform>) {
        let session = Arc::new(Session::with_instruments(
            platform,
            self.config,
            Some(Arc::clone(&self.pool)),
            self.metrics.kernel.clone(),
        ));
        self.sessions.write().insert(name.to_string(), session);
    }

    /// Names of the registered platforms, sorted.
    pub fn platform_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sessions.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Shared handle to a registered platform.
    pub fn platform(&self, name: &str) -> Option<Arc<Platform>> {
        self.sessions.read().get(name).map(|s| Arc::clone(s.platform()))
    }

    /// The warm session of a platform (observability / tests).
    pub fn session(&self, name: &str) -> Result<Arc<Session>, ForecastError> {
        self.sessions
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ForecastError::UnknownPlatform(name.to_string()))
    }

    /// The current background-traffic epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advances the epoch (new metrology data arrived): every cached
    /// forecast becomes unreachable and its memory is reclaimed.
    pub fn bump_epoch(&self) -> u64 {
        let new = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.cache.purge_stale(new);
        new
    }

    /// Replaces the background flows of `platform` (typically derived
    /// from freshly ingested metrology data) and bumps the epoch.
    ///
    /// The epoch is bumped *around* the swap (before and after): queries
    /// that read the pre-transition epoch computed with the old
    /// background and stay valid under their key, while anything
    /// computed during the swap window lands on the intermediate epoch,
    /// which the second bump immediately invalidates. After this method
    /// returns, every reachable cache entry is consistent with the new
    /// background.
    pub fn set_background(
        &self,
        platform: &str,
        flows: &[TransferSpec],
    ) -> Result<u64, ForecastError> {
        let session = self.session(platform)?;
        let resolved = flows
            .iter()
            .map(|f| {
                let s = session.resolve_spec(f)?;
                Ok(BackgroundFlow { src: s.src, dst: s.dst, size: s.size, path: s.path })
            })
            .collect::<Result<Vec<_>, ForecastError>>()?;
        self.bump_epoch();
        session.set_background(resolved);
        Ok(self.bump_epoch())
    }

    /// Cache hits so far (tests / observability).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses so far (tests / observability).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Requests that joined an in-flight computation instead of
    /// re-simulating.
    pub fn coalesced(&self) -> u64 {
        self.cache.coalesced()
    }

    /// Stale-epoch answers served (degraded mode).
    pub fn stale_served(&self) -> u64 {
        self.cache.stale_served()
    }

    /// Records a request shed by admission control (counter lives with
    /// the other serving statistics on the cache).
    pub fn note_shed(&self) {
        self.cache.note_shed();
    }

    /// Requests shed by admission control.
    pub fn shed(&self) -> u64 {
        self.cache.shed()
    }

    /// Leader computations started so far: each cache miss that actually
    /// reached simulation counts once, however many followers coalesced
    /// onto it.
    pub fn simulations(&self) -> u64 {
        self.metrics.simulations.get()
    }

    /// Installs (or clears) the chaos hook applied at the start of every
    /// leader computation. Testing only; serving runs with `None`.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write() = injector;
    }

    /// Marks the start of a leader computation: counts it and applies
    /// the installed fault, if any (which may sleep or panic here).
    fn begin_simulation(&self) {
        self.metrics.simulations.inc();
        let injector = self.faults.read().clone();
        if let Some(inj) = injector {
            inj.step();
        }
    }

    /// Runs `compute` under singleflight: the first request for `key`
    /// becomes the leader and computes; concurrent duplicates block and
    /// share its outcome. See the module docs for the panic-handoff and
    /// cache-ordering invariants. `routes` and `valid` flow into
    /// [`ForecastCache::insert_if`]: the leader's result is filed with
    /// the query's route union for targeted invalidation, and only if
    /// `valid` still holds under the cache lock (the overlay-version
    /// check closing the race between a computation and a concurrent
    /// `link_event`).
    fn coalesce(
        &self,
        key: CacheKey,
        routes: Option<Arc<[u32]>>,
        valid: impl FnOnce() -> bool,
        compute: impl FnOnce() -> Result<CachedResult, ForecastError>,
    ) -> Result<CachedResult, ForecastError> {
        let existing = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            // Double-check under the flights lock: a finishing leader
            // inserts into the cache *before* retiring its flight, so a
            // key absent from both is genuinely uncomputed.
            if let Some(cached) = self.cache.peek(&key) {
                return Ok(cached);
            }
            match flights.entry(key.clone()) {
                MapEntry::Occupied(e) => Some(Arc::clone(e.get())),
                MapEntry::Vacant(v) => {
                    v.insert(Arc::new(Flight::default()));
                    None
                }
            }
        };
        if let Some(flight) = existing {
            self.cache.note_coalesced();
            let _wait = Span::start(&self.metrics.stage_coalesce_wait);
            return flight.wait();
        }

        // Leader. The guard keeps followers safe against a panicking
        // computation: its Drop publishes an Internal outcome and retires
        // the flight while the panic continues to the leader's caller.
        struct LeaderGuard<'a> {
            engine: &'a ForecastEngine,
            key: &'a CacheKey,
            done: bool,
        }
        impl Drop for LeaderGuard<'_> {
            fn drop(&mut self) {
                if !self.done {
                    self.engine.finish_flight(
                        self.key,
                        Err(ForecastError::Internal(
                            "coalesced forecast computation panicked".into(),
                        )),
                    );
                }
            }
        }
        let mut guard = LeaderGuard { engine: self, key: &key, done: false };
        // The simulate stage covers the whole leader computation
        // (sharding, simulation, selection replay); a panicking compute
        // still records — the span drops during unwinding.
        let simulate = Span::start(&self.metrics.stage_simulate);
        let result = compute();
        drop(simulate);
        guard.done = true;
        drop(guard);
        if let Ok(value) = &result {
            // Cache before retiring the flight (the double-check above
            // depends on this order). Errors are shared with this
            // flight's followers but never cached: the next request
            // retries.
            self.cache.insert_if(key.clone(), value.clone(), routes, valid);
        }
        self.finish_flight(&key, result.clone());
        result
    }

    /// Retires a flight, waking its followers with `outcome`.
    fn finish_flight(&self, key: &CacheKey, outcome: Result<CachedResult, ForecastError>) {
        let flight = {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            flights.remove(key)
        };
        if let Some(f) = flight {
            f.complete(outcome);
        }
    }

    /// Predicted completion times (seconds) of a set of concurrent
    /// transfers, in request order. Cached per epoch; sharded across the
    /// pool by link-disjoint components.
    pub fn predict(
        &self,
        platform: &str,
        specs: &[TransferSpec],
    ) -> Result<Arc<Vec<f64>>, ForecastError> {
        let session = self.session(platform)?;
        // The cache_lookup stage covers key construction (resolution,
        // footprint) plus the lookup itself — everything between
        // admission and the simulate/coalesce decision.
        let lookup = Span::start(&self.metrics.stage_cache_lookup);
        // Validation errors are cheap and per-request; resolving up
        // front also yields the route union the footprint key and
        // targeted invalidation need.
        let resolved = specs
            .iter()
            .map(|s| session.resolve_spec(s))
            .collect::<Result<Vec<_>, _>>()?;
        let routes = route_union(&resolved);
        let epoch = self.epoch();
        let v0 = session.overlay_version();
        let key = CacheKey::predict(platform, epoch, session.footprint(&routes), specs);
        if let Some(CachedResult::Predict(d)) = self.cache.get(&key) {
            return Ok(d);
        }
        drop(lookup);
        let valid_session = Arc::clone(&session);
        let outcome = self.coalesce(
            key,
            Some(routes),
            move || valid_session.overlay_version() == v0,
            || {
                self.begin_simulation();
                let durations = Arc::new(self.run_batch(&session, &resolved)?);
                Ok(CachedResult::Predict(durations))
            },
        )?;
        match outcome {
            CachedResult::Predict(d) => Ok(d),
            CachedResult::Select(_) => {
                Err(ForecastError::Internal("predict key yielded a selection".into()))
            }
        }
    }

    /// Simulates `background ∪ resolved`, sharded by component, returning
    /// durations in `resolved` order. Exactly equal to one monolithic
    /// simulation of the whole batch.
    fn run_batch(
        &self,
        session: &Session,
        resolved: &[ResolvedSpec],
    ) -> Result<Vec<f64>, ForecastError> {
        if resolved.is_empty() {
            return Ok(Vec::new());
        }
        // Label background ++ requests (the same item order the
        // monolithic simulation adds them in) against the session's
        // background-primed connectivity — the background attaches once
        // per epoch, not once per request batch.
        let requests: Vec<&[u32]> = resolved.iter().map(|r| r.path.resources.as_slice()).collect();
        let (background, comp) = session.label_batch(&requests);
        let n_bg = background.len();
        let n_comp = comp.iter().copied().max().map_or(0, |m| m + 1);

        if n_comp <= 1 {
            let all_bg: Vec<usize> = (0..n_bg).collect();
            let all: Vec<usize> = (0..resolved.len()).collect();
            return session.simulate_subset(&background, &all_bg, resolved, &all);
        }

        // Group item indices per component, preserving order within each.
        let mut groups: Vec<(Vec<usize>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); n_comp];
        for (item, &c) in comp.iter().enumerate() {
            if item < n_bg {
                groups[c].0.push(item);
            } else {
                groups[c].1.push(item - n_bg);
            }
        }
        // Background-only components cannot influence any request (that
        // is what "disjoint component" means) — simulating them would be
        // pure waste, so drop them before the fan-out.
        groups.retain(|g| !g.1.is_empty());

        let outcomes = self.pool.map(&groups, |_, (bg_idx, spec_idx)| {
            session.simulate_subset(&background, bg_idx, resolved, spec_idx)
        });

        // Deterministic merge: durations drop into their request slots;
        // the first failing component (in component order) wins on error.
        let mut durations = vec![0.0f64; resolved.len()];
        for (g, out) in groups.iter().zip(outcomes) {
            let durs = out?;
            for (slot, d) in g.1.iter().zip(durs) {
                durations[*slot] = d;
            }
        }
        Ok(durations)
    }

    /// The sequential algorithm's per-hypothesis makespan lower bound:
    /// each transfer alone needs at least `latency·factor + size /
    /// bottleneck` (same float operations as the reference).
    fn lower_bound(
        &self,
        session: &Session,
        specs: &[TransferSpec],
    ) -> Result<f64, ForecastError> {
        let mut bound = 0.0f64;
        for r in specs {
            let src = session.host(&r.src)?;
            let dst = session.host(&r.dst)?;
            let path = session.resolve(src, dst)?;
            let mut bw = path.bottleneck;
            if path.latency > 0.0 {
                bw = bw.min(self.config.tcp_gamma / (2.0 * path.latency));
            }
            let t = path.delay + if bw.is_finite() { r.size / bw } else { 0.0 };
            bound = bound.max(t);
        }
        Ok(bound)
    }

    /// Simulates one hypothesis (monolithic) and returns `(durations,
    /// makespan)`.
    fn simulate_hypothesis(
        &self,
        session: &Session,
        background: &[BackgroundFlow],
        specs: &[TransferSpec],
    ) -> Result<(Vec<f64>, f64), ForecastError> {
        let resolved = specs
            .iter()
            .map(|s| session.resolve_spec(s))
            .collect::<Result<Vec<_>, _>>()?;
        let all_bg: Vec<usize> = (0..background.len()).collect();
        let all: Vec<usize> = (0..resolved.len()).collect();
        let durations = session.simulate_subset(background, &all_bg, &resolved, &all)?;
        let makespan = durations.iter().copied().fold(0.0, f64::max);
        Ok((durations, makespan))
    }

    /// Evaluates `hypotheses` and returns the fastest, with pruning.
    /// Winner, makespan and pruned set are identical to the sequential
    /// reference algorithm (see the module docs for why); hypotheses are
    /// simulated in parallel waves of pool width.
    pub fn select_fastest(
        &self,
        platform: &str,
        hypotheses: &[Vec<TransferSpec>],
    ) -> Result<Arc<Selection>, ForecastError> {
        if hypotheses.is_empty() {
            return Err(ForecastError::NoHypotheses);
        }
        let session = self.session(platform)?;
        let lookup = Span::start(&self.metrics.stage_cache_lookup);
        let resolved = hypotheses
            .iter()
            .flatten()
            .map(|s| session.resolve_spec(s))
            .collect::<Result<Vec<_>, _>>()?;
        let routes = route_union(&resolved);
        let epoch = self.epoch();
        let v0 = session.overlay_version();
        let key = CacheKey::select(platform, epoch, session.footprint(&routes), hypotheses);
        if let Some(CachedResult::Select(s)) = self.cache.get(&key) {
            return Ok(s);
        }
        drop(lookup);
        let valid_session = Arc::clone(&session);
        let outcome = self.coalesce(
            key,
            Some(routes),
            move || valid_session.overlay_version() == v0,
            || {
                self.begin_simulation();
                let selection = self.compute_selection(&session, hypotheses)?;
                Ok(CachedResult::Select(Arc::new(selection)))
            },
        )?;
        match outcome {
            CachedResult::Select(s) => Ok(s),
            CachedResult::Predict(_) => {
                Err(ForecastError::Internal("select key yielded a prediction".into()))
            }
        }
    }

    /// The wave-parallel selection algorithm (one leader computation).
    fn compute_selection(
        &self,
        session: &Arc<Session>,
        hypotheses: &[Vec<TransferSpec>],
    ) -> Result<Selection, ForecastError> {
        let mut order: Vec<(usize, f64)> = hypotheses
            .iter()
            .enumerate()
            .map(|(i, h)| Ok((i, self.lower_bound(session, h)?)))
            .collect::<Result<_, ForecastError>>()?;
        order.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Wave-parallel simulation, cheapest lower bound first. The skip
        // test uses the best makespan over *completed waves*, which never
        // beats the sequential algorithm's running best over the full
        // prefix — so everything the sequential algorithm would simulate
        // lands in some wave.
        let background = session.background();
        let width = self.pool.size();
        type HypOutcome = Result<(Vec<f64>, f64), ForecastError>;
        let mut results: Vec<Option<HypOutcome>> = Vec::with_capacity(hypotheses.len());
        results.resize_with(hypotheses.len(), || None);
        let mut best_mk = f64::INFINITY;
        let mut wave: Vec<usize> = Vec::new();
        for k in 0..order.len() {
            let (i, lower) = order[k];
            if lower < best_mk {
                wave.push(i);
            }
            if wave.len() == width || (k + 1 == order.len() && !wave.is_empty()) {
                let outs = self.pool.map(&wave, |_, &i| {
                    self.simulate_hypothesis(session, &background, &hypotheses[i])
                });
                for (&i, out) in wave.iter().zip(outs) {
                    if let Ok((_, mk)) = &out {
                        best_mk = best_mk.min(*mk);
                    }
                    results[i] = Some(out);
                }
                wave.clear();
            }
        }

        // Replay the sequential prune/select decisions over the
        // simulated makespans: bit-identical winner and pruned set.
        let mut best: Option<(usize, f64, Vec<f64>)> = None;
        let mut pruned = Vec::new();
        for &(i, lower) in &order {
            if let Some((_, best_mk, _)) = &best {
                if lower >= *best_mk {
                    pruned.push(i);
                    continue;
                }
            }
            let outcome = match results[i].take() {
                Some(o) => o,
                // Unreachable by the conservativeness argument; simulate
                // inline as a safety net rather than panic in serving.
                None => self.simulate_hypothesis(session, &background, &hypotheses[i]),
            };
            let (durations, mk) = outcome?;
            let better = best.as_ref().is_none_or(|(_, b, _)| mk < *b);
            if better {
                best = Some((i, mk, durations));
            }
        }
        let (best, best_makespan, durations) = best.expect("≥1 hypothesis simulated");
        pruned.sort_unstable();
        Ok(Selection { best, best_makespan, durations, pruned })
    }

    /// Applies a serving-time platform event to `platform`'s session
    /// and cache: the session's link-state overlay records it (every
    /// later simulation sees the degraded capacities) and the cache
    /// drops exactly the entries whose routes cross the link —
    /// returning how many were evicted. No epoch bump: forecasts for
    /// routes the event cannot touch keep hitting their cached answers.
    pub fn link_event(
        &self,
        platform: &str,
        link: &str,
        kind: PlatformEventKind,
    ) -> Result<u64, ForecastError> {
        let session = self.session(platform)?;
        if let PlatformEventKind::Capacity(f) = kind {
            if !f.is_finite() || f < 0.0 {
                return Err(ForecastError::BadFactor(f));
            }
        }
        let link_id = session
            .platform()
            .link_by_name(link)
            .ok_or_else(|| ForecastError::UnknownLink(link.to_string()))?;
        let resource = session.apply_link_event(link_id, kind);
        Ok(self.cache.invalidate_link(platform, resource))
    }

    /// Cache entries evicted by route-targeted link invalidation.
    pub fn invalidated_targeted(&self) -> u64 {
        self.cache.invalidated_targeted()
    }

    /// Cache entries reclaimed by epoch purges.
    pub fn invalidated_epoch(&self) -> u64 {
        self.cache.invalidated_epoch()
    }

    /// Degraded-mode lookup: the freshest retained stale answer for this
    /// predict query, with its epoch lag. No simulation happens here.
    pub fn predict_stale(
        &self,
        platform: &str,
        specs: &[TransferSpec],
    ) -> Option<(Arc<Vec<f64>>, u64)> {
        let session = self.session(platform).ok()?;
        let resolved = specs
            .iter()
            .map(|s| session.resolve_spec(s))
            .collect::<Result<Vec<_>, _>>()
            .ok()?;
        let footprint = session.footprint(&route_union(&resolved));
        let key = CacheKey::predict(platform, self.epoch(), footprint, specs);
        match self.cache.get_stale(&key) {
            Some((CachedResult::Predict(d), lag)) => Some((d, lag)),
            _ => None,
        }
    }

    /// Degraded-mode lookup: the freshest retained stale answer for this
    /// selection query, with its epoch lag. No simulation happens here.
    pub fn select_fastest_stale(
        &self,
        platform: &str,
        hypotheses: &[Vec<TransferSpec>],
    ) -> Option<(Arc<Selection>, u64)> {
        let session = self.session(platform).ok()?;
        let resolved = hypotheses
            .iter()
            .flatten()
            .map(|s| session.resolve_spec(s))
            .collect::<Result<Vec<_>, _>>()
            .ok()?;
        let footprint = session.footprint(&route_union(&resolved));
        let key = CacheKey::select(platform, self.epoch(), footprint, hypotheses);
        match self.cache.get_stale(&key) {
            Some((CachedResult::Select(s), lag)) => Some((s, lag)),
            _ => None,
        }
    }
}

/// Sorted, deduplicated union of the solver resources crossed by a set
/// of resolved specs — the footprint / targeted-invalidation route set.
fn route_union(resolved: &[ResolvedSpec]) -> Arc<[u32]> {
    let mut v: Vec<u32> =
        resolved.iter().flat_map(|r| r.path.resources.iter().copied()).collect();
    v.sort_unstable();
    v.dedup();
    v.into()
}

#[cfg(test)]
mod tests {
    // Batch sharding now reuses the solver's connectivity structure
    // (`simflow::Connectivity::label_batch`) instead of re-deriving
    // link-disjointness with its own union-find; these tests pin the
    // semantics the engine depends on at the call site.
    use simflow::Connectivity;

    #[test]
    fn label_batch_groups_by_shared_resources() {
        let lists: Vec<&[u32]> = vec![
            &[0, 1],  // A
            &[2],     // B
            &[1, 3],  // C shares 1 with A
            &[],      // D unconstrained
            &[4],     // E
            &[],      // F unconstrained — shares D's bucket
            &[3, 4],  // G bridges C and E
        ];
        let c = Connectivity::label_batch(5, &lists);
        assert_eq!(c[0], c[2], "A and C share link 1");
        assert_eq!(c[2], c[6], "G bridges into A/C via link 3");
        assert_eq!(c[4], c[6], "G bridges E via link 4");
        assert_ne!(c[0], c[1], "B is alone");
        assert_eq!(c[3], c[5], "unconstrained flows share one bucket");
        assert_ne!(c[3], c[0]);
        // dense, first-appearance ids
        assert_eq!(c[0], 0);
        assert_eq!(c[1], 1);
        assert_eq!(c[3], 2);
    }

    #[test]
    fn label_batch_of_disjoint_items_is_distinct() {
        let lists: Vec<&[u32]> = vec![&[0], &[1], &[2]];
        assert_eq!(Connectivity::label_batch(3, &lists), vec![0, 1, 2]);
    }
}
