//! Integration tests of the forecast engine against a synthetic
//! multi-cluster platform: parallel execution must never change answers,
//! sessions must actually stay warm, and the epoch must gate the cache.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use forecast::{
    EngineConfig, Fault, FaultInjector, FaultPlan, ForecastEngine, ForecastError, TransferSpec,
};
use simflow::platform::builder::PlatformBuilder;
use simflow::platform::routing::{Element, RoutingKind};
use simflow::platform::SharingPolicy;
use simflow::{NetworkConfig, Platform, SimTime, Simulation};

/// Two 8-host clusters behind per-host access links and one shared
/// backbone — enough structure for multi-component batches.
fn two_clusters() -> Platform {
    let mut b = PlatformBuilder::new("root", RoutingKind::Full);
    let root = b.root_zone();
    let bb = b.add_link("bb", 1.25e9, 2e-3, SharingPolicy::Shared);
    let mut gws = Vec::new();
    for (c, cluster) in ["alpha", "beta"].iter().enumerate() {
        let zone = b.add_zone(root, cluster, RoutingKind::Full);
        let gw = b.add_router(zone, &format!("{cluster}-gw"));
        b.set_gateway(zone, gw);
        let mut hosts = Vec::new();
        let mut eths = Vec::new();
        for h in 0..8 {
            let host = b.add_host(zone, &format!("{cluster}-{h}"), 1e9);
            let l = b.add_link(
                &format!("{cluster}-{h}-eth"),
                1.25e8,
                1e-4,
                SharingPolicy::Shared,
            );
            b.add_route(zone, Element::Point(host.netpoint()), Element::Point(gw), vec![l], true);
            hosts.push(host);
            eths.push(l);
        }
        // full intra-cluster routing: both access links per pair
        for i in 0..hosts.len() {
            for j in (i + 1)..hosts.len() {
                b.add_route(
                    zone,
                    Element::Point(hosts[i].netpoint()),
                    Element::Point(hosts[j].netpoint()),
                    vec![eths[i], eths[j]],
                    true,
                );
            }
        }
        gws.push(zone);
        let _ = c;
    }
    b.add_route(root, Element::Zone(gws[0]), Element::Zone(gws[1]), vec![bb], true);
    b.build().unwrap()
}

fn spec(src: &str, dst: &str, size: f64) -> TransferSpec {
    TransferSpec { src: src.into(), dst: dst.into(), size }
}

fn engine(workers: usize) -> ForecastEngine {
    let e = ForecastEngine::with_engine_config(
        NetworkConfig::default(),
        EngineConfig { workers, cache_capacity: 64, ..EngineConfig::default() },
    );
    e.register_platform("twoc", two_clusters());
    e
}

/// The engine's reference: one monolithic simulation of the same batch.
fn monolithic(specs: &[TransferSpec]) -> Vec<f64> {
    let p = two_clusters();
    let mut sim = Simulation::new(&p, NetworkConfig::default());
    let ids: Vec<_> = specs
        .iter()
        .map(|s| {
            sim.add_transfer_at(
                p.host_by_name(&s.src).unwrap(),
                p.host_by_name(&s.dst).unwrap(),
                s.size,
                SimTime::ZERO,
            )
            .unwrap()
        })
        .collect();
    let report = sim.run().unwrap();
    ids.iter().map(|id| report.duration(*id).as_secs()).collect()
}

#[test]
fn sharded_predict_is_bit_identical_to_monolithic() {
    // 10 transfers forming several link-disjoint components: intra-alpha
    // pairs, intra-beta pairs, inter-cluster flows (coupled through the
    // backbone) and a same-host no-op.
    let specs = vec![
        spec("alpha-0", "alpha-1", 5e8),
        spec("alpha-2", "alpha-3", 2e8),
        spec("beta-0", "beta-1", 7e8),
        spec("alpha-4", "beta-4", 3e8),
        spec("alpha-5", "beta-5", 3e8),
        spec("beta-2", "beta-3", 1e8),
        spec("alpha-0", "alpha-1", 1e7),
        spec("beta-6", "beta-7", 9e8),
        spec("alpha-6", "alpha-7", 4e8),
        spec("alpha-6", "alpha-6", 1e9), // same host: unconstrained
    ];
    let want = monolithic(&specs);
    for workers in [1, 4] {
        let e = engine(workers);
        let got = e.predict("twoc", &specs).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "workers={workers}: {g} vs {w}");
        }
    }
}

#[test]
fn select_fastest_winner_is_worker_count_invariant() {
    // Randomized hypothesis sets (deterministic LCG): winner, makespan
    // and pruned set must agree between 1 worker (sequential waves) and
    // many workers (parallel waves).
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move |m: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    for round in 0..5 {
        let n_hyp = 4 + next(5); // 4..8 hypotheses
        let hypotheses: Vec<Vec<TransferSpec>> = (0..n_hyp)
            .map(|_| {
                (0..1 + next(4))
                    .map(|_| {
                        let cs = ["alpha", "beta"][next(2)];
                        let cd = ["alpha", "beta"][next(2)];
                        spec(
                            &format!("{cs}-{}", next(8)),
                            &format!("{cd}-{}", next(8)),
                            1e7 * (1 + next(100)) as f64,
                        )
                    })
                    .collect()
            })
            .collect();
        let seq = engine(1).select_fastest("twoc", &hypotheses).unwrap();
        let par = engine(4).select_fastest("twoc", &hypotheses).unwrap();
        assert_eq!(seq.best, par.best, "round {round}: winner diverged");
        assert_eq!(
            seq.best_makespan.to_bits(),
            par.best_makespan.to_bits(),
            "round {round}: makespan diverged"
        );
        assert_eq!(seq.pruned, par.pruned, "round {round}: pruned set diverged");
        assert_eq!(seq.durations, par.durations, "round {round}");
    }
}

#[test]
fn session_stays_warm_across_queries() {
    let e = engine(2);
    let q = vec![spec("alpha-0", "beta-3", 5e8), spec("alpha-1", "alpha-2", 5e8)];
    e.predict("twoc", &q).unwrap();
    let session = e.session("twoc").unwrap();
    let warmed = session.routes_cached();
    assert!(warmed >= 2, "routes memoized: {warmed}");
    // same endpoints, different sizes: no new resolutions
    let q2 = vec![spec("alpha-0", "beta-3", 1e6), spec("alpha-1", "alpha-2", 2e6)];
    e.predict("twoc", &q2).unwrap();
    assert_eq!(session.routes_cached(), warmed, "repeat endpoints resolve nothing");
}

#[test]
fn cache_hits_within_epoch_and_misses_after_bump() {
    let e = engine(2);
    let q = vec![spec("alpha-0", "alpha-1", 5e8)];
    let first = e.predict("twoc", &q).unwrap();
    assert_eq!(e.cache_hits(), 0);
    let second = e.predict("twoc", &q).unwrap();
    assert_eq!(e.cache_hits(), 1, "second identical query must hit");
    assert_eq!(first, second);
    // textual variants of the same query share the entry
    let q_canonical = vec![spec("alpha-0", "alpha-1", 500_000_000.0)];
    e.predict("twoc", &q_canonical).unwrap();
    assert_eq!(e.cache_hits(), 2);

    let before = e.epoch();
    e.bump_epoch();
    assert_eq!(e.epoch(), before + 1);
    assert_eq!(e.cache_len(), 0, "stale entries purged");
    e.predict("twoc", &q).unwrap();
    assert_eq!(e.cache_hits(), 2, "post-bump query re-simulates");
}

#[test]
fn background_flows_slow_foreground_and_bump_epoch() {
    let e = engine(2);
    let q = vec![spec("alpha-0", "alpha-1", 5e8)];
    let quiet = e.predict("twoc", &q).unwrap()[0];

    let epoch_before = e.epoch();
    // saturate alpha-0's access link with background traffic
    e.set_background("twoc", &[spec("alpha-0", "alpha-2", 1e10)]).unwrap();
    assert!(e.epoch() > epoch_before, "background change must advance the epoch");

    let busy = e.predict("twoc", &q).unwrap()[0];
    assert!(
        busy > quiet * 1.5,
        "background contention must slow the forecast: {quiet} -> {busy}"
    );

    // clearing the background restores the quiet forecast exactly
    e.set_background("twoc", &[]).unwrap();
    let again = e.predict("twoc", &q).unwrap()[0];
    assert_eq!(again.to_bits(), quiet.to_bits());
}

#[test]
fn error_surface_matches_inputs() {
    let e = engine(2);
    assert!(matches!(
        e.predict("nope", &[spec("a", "b", 1.0)]),
        Err(ForecastError::UnknownPlatform(_))
    ));
    assert!(matches!(
        e.predict("twoc", &[spec("ghost", "alpha-0", 1.0)]),
        Err(ForecastError::UnknownHost(_))
    ));
    assert!(matches!(
        e.predict("twoc", &[spec("alpha-0", "alpha-1", -5.0)]),
        Err(ForecastError::BadSize(_))
    ));
    assert!(matches!(
        e.select_fastest("twoc", &[]),
        Err(ForecastError::NoHypotheses)
    ));
    // errors are not cached
    assert_eq!(e.cache_len(), 0);
}

fn hypotheses() -> Vec<Vec<TransferSpec>> {
    vec![
        vec![spec("alpha-0", "alpha-1", 5e8), spec("alpha-2", "alpha-3", 2e8)],
        vec![spec("beta-0", "beta-1", 7e8)],
        vec![spec("alpha-4", "beta-4", 3e8)],
    ]
}

#[test]
fn concurrent_identical_selects_coalesce_to_one_simulation() {
    let e = Arc::new(engine(2));
    // Slow the leader computation down so every follower is parked on
    // the flight before it completes: deterministic coalescing counts.
    e.set_fault_injector(Some(Arc::new(FaultInjector::new(
        FaultPlan::new(0)
            .force(0, Fault::Delay(Duration::from_millis(500)))
            .force(1, Fault::Delay(Duration::from_millis(500))),
    ))));
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let e = Arc::clone(&e);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                e.select_fastest("twoc", &hypotheses()).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert_eq!(e.simulations(), 1, "exactly one leader computation");
    assert_eq!(e.coalesced(), (n - 1) as u64, "everyone else joined the flight");
    for r in &results[1..] {
        assert!(Arc::ptr_eq(r, &results[0]), "followers share the leader's Arc");
        assert_eq!(**r, *results[0]);
    }
    // same for predict: one more simulation, N-1 more coalesces
    let batch = vec![spec("alpha-0", "beta-3", 5e8)];
    let barrier = Arc::new(Barrier::new(n));
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let e = Arc::clone(&e);
            let batch = batch.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                e.predict("twoc", &batch).unwrap()
            })
        })
        .collect();
    let durations: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    assert_eq!(e.simulations(), 2);
    assert_eq!(e.coalesced(), 2 * (n - 1) as u64);
    for d in &durations[1..] {
        assert_eq!(**d, *durations[0]);
    }
}

#[test]
fn leader_panic_fails_followers_cleanly_and_engine_recovers() {
    let e = Arc::new(engine(2));
    // The first leader computation panics after 300 ms — long enough for
    // every follower to be waiting on the flight when it dies.
    e.set_fault_injector(Some(Arc::new(FaultInjector::new(
        FaultPlan::new(0).force(0, Fault::Panic { after: Duration::from_millis(300) }),
    ))));
    let n = 5;
    let barrier = Arc::new(Barrier::new(n));
    let clients: Vec<_> = (0..n)
        .map(|_| {
            let e = Arc::clone(&e);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    e.select_fastest("twoc", &hypotheses())
                }))
            })
        })
        .collect();
    let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    // Exactly one caller (the leader) observed the panic itself; every
    // follower got a clean Internal error — nobody hung.
    let panicked = outcomes.iter().filter(|o| o.is_err()).count();
    assert_eq!(panicked, 1, "only the leader's caller sees the panic");
    for result in outcomes.iter().flatten() {
        assert!(
            matches!(result, Err(ForecastError::Internal(_))),
            "followers of a dead flight get Internal, got {result:?}"
        );
    }
    assert_eq!(e.simulations(), 1);
    assert_eq!(e.coalesced(), (n - 1) as u64);
    assert_eq!(e.cache_len(), 0, "a panicked computation caches nothing");

    // No poisoned locks, no wedged flight table: the retry recomputes
    // (injection point 1 carries no fault) and succeeds.
    let retry = e.select_fastest("twoc", &hypotheses()).unwrap();
    assert_eq!(e.simulations(), 2, "retry re-simulates after the panic");
    let reference = engine(1).select_fastest("twoc", &hypotheses()).unwrap();
    assert_eq!(retry.best, reference.best);
    assert_eq!(retry.best_makespan.to_bits(), reference.best_makespan.to_bits());
}
