//! Serving-time platform dynamics: `link_event` must degrade every
//! later forecast of routes the event can touch, invalidate exactly the
//! crossing cache entries (disjoint routes keep hitting), propagate
//! through background coupling, and round-trip restores back to
//! bit-identical pre-event answers.

use forecast::{EngineConfig, ForecastEngine, ForecastError, TransferSpec};
use simflow::platform::builder::PlatformBuilder;
use simflow::platform::routing::{Element, RoutingKind};
use simflow::platform::SharingPolicy;
use simflow::{NetworkConfig, Platform, PlatformEventKind, SimTime, SimTuning, Simulation};

/// Two 8-host clusters behind per-host access links and one shared
/// backbone (same topology as the engine integration tests).
fn two_clusters() -> Platform {
    let mut b = PlatformBuilder::new("root", RoutingKind::Full);
    let root = b.root_zone();
    let bb = b.add_link("bb", 1.25e9, 2e-3, SharingPolicy::Shared);
    let mut zones = Vec::new();
    for cluster in ["alpha", "beta"] {
        let zone = b.add_zone(root, cluster, RoutingKind::Full);
        let gw = b.add_router(zone, &format!("{cluster}-gw"));
        b.set_gateway(zone, gw);
        let mut hosts = Vec::new();
        let mut eths = Vec::new();
        for h in 0..8 {
            let host = b.add_host(zone, &format!("{cluster}-{h}"), 1e9);
            let l = b.add_link(
                &format!("{cluster}-{h}-eth"),
                1.25e8,
                1e-4,
                SharingPolicy::Shared,
            );
            b.add_route(zone, Element::Point(host.netpoint()), Element::Point(gw), vec![l], true);
            hosts.push(host);
            eths.push(l);
        }
        for i in 0..hosts.len() {
            for j in (i + 1)..hosts.len() {
                b.add_route(
                    zone,
                    Element::Point(hosts[i].netpoint()),
                    Element::Point(hosts[j].netpoint()),
                    vec![eths[i], eths[j]],
                    true,
                );
            }
        }
        zones.push(zone);
    }
    b.add_route(root, Element::Zone(zones[0]), Element::Zone(zones[1]), vec![bb], true);
    b.build().unwrap()
}

fn spec(src: &str, dst: &str, size: f64) -> TransferSpec {
    TransferSpec { src: src.into(), dst: dst.into(), size }
}

fn engine(workers: usize) -> ForecastEngine {
    let e = ForecastEngine::with_engine_config(
        NetworkConfig::default(),
        EngineConfig { workers, cache_capacity: 64, ..EngineConfig::default() },
    );
    e.register_platform("twoc", two_clusters());
    e
}

/// Reference: a from-scratch simulation on a platform whose capacity
/// vector has the event applied by hand.
fn reference(events: &[(&str, f64)], specs: &[TransferSpec]) -> Vec<f64> {
    let p = two_clusters();
    let cfg = NetworkConfig::default();
    let mut caps = Simulation::shared_capacities(&p, &cfg);
    for (link, factor) in events {
        caps[p.link_by_name(link).unwrap().index()] *= factor;
    }
    let mut sim = Simulation::with_tuning(&p, cfg, caps, SimTuning { pool: None, warm_start: true });
    let ids: Vec<_> = specs
        .iter()
        .map(|s| {
            sim.add_transfer_at(
                p.host_by_name(&s.src).unwrap(),
                p.host_by_name(&s.dst).unwrap(),
                s.size,
                SimTime::ZERO,
            )
            .unwrap()
        })
        .collect();
    let report = sim.run().unwrap();
    ids.iter().map(|id| report.duration(*id).as_secs()).collect()
}

#[test]
fn link_event_invalidates_crossing_entries_only() {
    let e = engine(2);
    let on_alpha = vec![spec("alpha-0", "alpha-1", 5e8)];
    let on_beta = vec![spec("beta-0", "beta-1", 5e8)];
    let quiet_alpha = e.predict("twoc", &on_alpha).unwrap()[0];
    let quiet_beta = e.predict("twoc", &on_beta).unwrap()[0];
    assert_eq!(e.simulations(), 2);

    // Halve alpha-0's access link: exactly the alpha entry is evicted.
    let evicted = e.link_event("twoc", "alpha-0-eth", PlatformEventKind::Capacity(0.5)).unwrap();
    assert_eq!(evicted, 1, "one crossing entry");
    assert_eq!(e.invalidated_targeted(), 1);

    // The disjoint beta query still hits its pre-event entry (footprint
    // 0 on both sides of the event).
    let hits_before = e.cache_hits();
    let beta_again = e.predict("twoc", &on_beta).unwrap()[0];
    assert_eq!(beta_again.to_bits(), quiet_beta.to_bits());
    assert_eq!(e.cache_hits(), hits_before + 1, "disjoint route must still hit");
    assert_eq!(e.simulations(), 2, "no re-simulation for the disjoint route");

    // The crossing query re-simulates and matches the from-scratch
    // reference on the degraded platform, bit for bit.
    let degraded = e.predict("twoc", &on_alpha).unwrap()[0];
    assert_eq!(e.simulations(), 3);
    let want = reference(&[("alpha-0-eth", 0.5)], &on_alpha)[0];
    assert_eq!(degraded.to_bits(), want.to_bits(), "degraded forecast diverged");
    assert!(degraded > quiet_alpha, "half capacity must slow the transfer");

    // Restore: the overlay entry disappears, the footprint returns to
    // its pre-event value, and the forecast is bit-identical to quiet.
    let evicted = e.link_event("twoc", "alpha-0-eth", PlatformEventKind::Capacity(1.0)).unwrap();
    assert_eq!(evicted, 1, "the degraded entry crosses the link too");
    let session = e.session("twoc").unwrap();
    assert_eq!(session.overlay_len(), 0, "identity entries are removed");
    let restored = e.predict("twoc", &on_alpha).unwrap()[0];
    assert_eq!(restored.to_bits(), quiet_alpha.to_bits());
}

#[test]
fn down_fails_crossing_transfers_and_up_restores_exactly() {
    let e = engine(2);
    let on_alpha = vec![spec("alpha-0", "alpha-1", 5e8)];
    let quiet = e.predict("twoc", &on_alpha).unwrap()[0];

    e.link_event("twoc", "alpha-0-eth", PlatformEventKind::Down).unwrap();
    let dead = e.predict("twoc", &on_alpha).unwrap()[0];
    assert!(dead.is_infinite(), "a transfer over a dead link cannot complete: {dead}");

    // Selection routes around the outage: the dead hypothesis loses to a
    // live one whatever its size advantage.
    let hypotheses = vec![
        vec![spec("alpha-0", "alpha-1", 1e6)], // tiny but dead
        vec![spec("alpha-2", "alpha-3", 5e8)],
    ];
    let sel = e.select_fastest("twoc", &hypotheses).unwrap();
    assert_eq!(sel.best, 1, "the live hypothesis must win");
    assert!(sel.best_makespan.is_finite());

    e.link_event("twoc", "alpha-0-eth", PlatformEventKind::Up).unwrap();
    let restored = e.predict("twoc", &on_alpha).unwrap()[0];
    assert_eq!(restored.to_bits(), quiet.to_bits(), "recovery must be exact");
}

#[test]
fn background_coupling_invalidates_disjoint_routes_through_the_footprint() {
    let e = engine(2);
    // Background: alpha-2 → beta-2 crosses alpha-2-eth, bb, beta-2-eth.
    e.set_background("twoc", &[spec("alpha-2", "beta-2", 1e10)]).unwrap();

    // The query's own route (alpha-2-eth, alpha-3-eth) does not cross
    // the backbone — but the background flow couples it to bb.
    let q = vec![spec("alpha-2", "alpha-3", 5e8)];
    let before = e.predict("twoc", &q).unwrap()[0];
    assert_eq!(e.simulations(), 1);

    // Choke the backbone hard enough to bottleneck the background flow
    // below its access-link share: the query's answer must change.
    let evicted = e.link_event("twoc", "bb", PlatformEventKind::Capacity(0.01)).unwrap();
    assert_eq!(evicted, 0, "no cached route crosses bb — targeted eviction finds nothing");
    let after = e.predict("twoc", &q).unwrap()[0];
    assert_eq!(e.simulations(), 2, "footprint change must force a re-simulation");
    assert!(
        after < before,
        "choking the background off the access link must speed the query: {before} -> {after}"
    );

    // A route in a component the background never touches keeps hitting.
    let disjoint = vec![spec("beta-0", "beta-1", 5e8)];
    e.predict("twoc", &disjoint).unwrap();
    assert_eq!(e.simulations(), 3);
    let hits = e.cache_hits();
    e.predict("twoc", &disjoint).unwrap();
    assert_eq!((e.cache_hits(), e.simulations()), (hits + 1, 3));

    // Restore: back to the original answer, bit for bit.
    e.link_event("twoc", "bb", PlatformEventKind::Capacity(1.0)).unwrap();
    let restored = e.predict("twoc", &q).unwrap()[0];
    assert_eq!(restored.to_bits(), before.to_bits());
}

#[test]
fn link_event_error_surface() {
    let e = engine(1);
    assert!(matches!(
        e.link_event("nope", "bb", PlatformEventKind::Down),
        Err(ForecastError::UnknownPlatform(_))
    ));
    assert!(matches!(
        e.link_event("twoc", "ghost-link", PlatformEventKind::Down),
        Err(ForecastError::UnknownLink(_))
    ));
    assert!(matches!(
        e.link_event("twoc", "bb", PlatformEventKind::Capacity(-1.0)),
        Err(ForecastError::BadFactor(_))
    ));
    assert!(matches!(
        e.link_event("twoc", "bb", PlatformEventKind::Capacity(f64::NAN)),
        Err(ForecastError::BadFactor(_))
    ));
    // A factor of zero is legal: the link exists but serves nothing.
    assert!(e.link_event("twoc", "bb", PlatformEventKind::Capacity(0.0)).is_ok());
    assert!(e.link_event("twoc", "bb", PlatformEventKind::Capacity(1.0)).is_ok());
}

#[test]
fn warm_session_applies_events_without_rebuild() {
    // The same session object keeps serving across a whole
    // degrade/restore cycle, its memoized routes intact.
    let e = engine(2);
    let q = vec![spec("alpha-0", "beta-3", 5e8)];
    let quiet = e.predict("twoc", &q).unwrap()[0];
    let session = e.session("twoc").unwrap();
    let warmed = session.routes_cached();
    assert!(warmed >= 1);

    // 0.05 × 1.25e9 = 6.25e7 B/s — below the 1.25e8 access links, so
    // the backbone genuinely binds.
    e.link_event("twoc", "bb", PlatformEventKind::Capacity(0.05)).unwrap();
    let degraded = e.predict("twoc", &q).unwrap()[0];
    let want = reference(&[("bb", 0.05)], &q)[0];
    assert_eq!(degraded.to_bits(), want.to_bits());
    assert!(degraded > quiet);

    e.link_event("twoc", "bb", PlatformEventKind::Capacity(1.0)).unwrap();
    let restored = e.predict("twoc", &q).unwrap()[0];
    assert_eq!(restored.to_bits(), quiet.to_bits());

    let same_session = e.session("twoc").unwrap();
    assert!(std::sync::Arc::ptr_eq(&session, &same_session), "no session rebuild");
    assert_eq!(same_session.routes_cached(), warmed, "memoized routes survive events");
}
