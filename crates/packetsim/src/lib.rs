//! # packetsim — the "real testbed" substitute
//!
//! The CLUSTER 2012 Pilgrim paper validates its flow-level forecasts
//! against iperf transfers executed on the physical Grid'5000 platform.
//! This reproduction has no Grid'5000, so `packetsim` provides the ground
//! truth instead, at two fidelity levels sharing one topology description:
//!
//! * [`engine::PacketSim`] — a per-segment TCP discrete-event simulator
//!   (handshake, slow start, CUBIC/Reno, delayed ACKs, fast retransmit,
//!   RTO, drop-tail queues, switch backplane limits). Faithful but slow —
//!   exactly the trade-off the paper describes for packet-level
//!   simulators.
//! * [`fluid::FluidSim`] — an RTT-round fluid TCP model with the same
//!   connection lifecycle (handshake, slow-start ramp, steady sharing),
//!   scalable to the paper's full parameter sweeps. Its steady-state
//!   shares come from the same weighted max-min principle real TCP
//!   approximates, *computed on the true topology including equipment
//!   capacity limits that the predictor's platform model lacks* — the
//!   paper points at precisely this gap ("the generated SimGrid platform
//!   description does not yet contain network equipments bandwidth
//!   limits").
//! * [`testbed`] — the measurement-condition wrapper: per-host application
//!   startup overhead (dominant for small transfers on the 2004-era
//!   sagittaire nodes) and seeded run-to-run noise standing in for
//!   residual cross-traffic.
//!
//! `fluid` is cross-validated against `engine` in `tests/agreement.rs`.

pub mod engine;
pub mod fluid;
pub mod net;
pub mod tcp;
pub mod testbed;

pub use engine::{ChannelStats, FlowResult, FlowSpec, PacketSim, RunReport};
pub use fluid::FluidSim;
pub use net::{ChannelId, Network, NetworkBuilder, NodeId};
pub use tcp::{CongestionControl, TcpConfig};
pub use testbed::{Testbed, TestbedConfig};
