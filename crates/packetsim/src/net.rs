//! Packet-network topology: hosts, switches, directed channels and
//! forwarding.
//!
//! A [`Network`] is the "real" hardware in the reproduction: where the
//! simflow platform model deliberately reproduces the paper's *incomplete*
//! Grid'5000 description (hard-coded latencies, no equipment capacity
//! limits), this network carries the ground truth — true switch latencies
//! and, crucially, finite switch **backplane capacities**, which the paper
//! identifies as absent from its generated platform ("the generated SimGrid
//! platform description does not yet contain network equipments bandwidth
//! limits").
//!
//! Links are full duplex, modeled as two independent directed *channels*,
//! each with a serialization rate, a propagation delay and a byte-bounded
//! drop-tail egress queue. A switch with a finite backplane interposes an
//! internal channel that every transiting packet must cross.

use std::collections::HashMap;

/// Identifier of a node (host or switch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a directed channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ChannelId(pub(crate) u32);

impl ChannelId {
    /// Dense index of the channel.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kind of node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An end host (runs TCP endpoints).
    Host,
    /// A switch/router (forwards packets).
    Switch,
}

/// A node of the packet network.
#[derive(Clone, Debug)]
pub struct Node {
    /// Unique name.
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
    /// Aggregate forwarding capacity in bytes/s (`f64::INFINITY` for a
    /// non-blocking fabric). Only meaningful for switches.
    pub backplane: f64,
    /// Internal channel enforcing `backplane`, if finite.
    pub(crate) backplane_channel: Option<ChannelId>,
}

/// A directed channel.
#[derive(Clone, Debug)]
pub struct ChannelSpec {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialization rate in bytes/s.
    pub rate: f64,
    /// Propagation delay in seconds.
    pub delay: f64,
    /// Drop-tail queue bound in bytes.
    pub queue_bytes: f64,
    /// True for switch-internal backplane channels.
    pub internal: bool,
}

/// An immutable packet-network description.
#[derive(Debug)]
pub struct Network {
    pub(crate) nodes: Vec<Node>,
    pub(crate) channels: Vec<ChannelSpec>,
    by_name: HashMap<String, NodeId>,
}

impl Network {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of channels (including backplane-internal ones).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Node lookup by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The name of a node.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.nodes[n.index()].name
    }

    /// Node attributes.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.index()]
    }

    /// Channel attributes.
    pub fn channel(&self, c: ChannelId) -> &ChannelSpec {
        &self.channels[c.index()]
    }

    /// Computes, for every node, the outgoing channel leading towards
    /// `dst` on the lowest-latency path (ties broken by hop count).
    /// Entry for unreachable nodes or `dst` itself is `None`.
    pub fn forwarding_to(&self, dst: NodeId) -> Vec<Option<ChannelId>> {
        // Dijkstra from dst over *reversed* external channels; cost =
        // delay + epsilon per hop.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut rev: Vec<Vec<(usize, ChannelId, f64)>> = vec![Vec::new(); n];
        for (i, c) in self.channels.iter().enumerate() {
            if c.internal {
                continue;
            }
            let cost = c.delay + 1e-9 + 1e-12 / c.rate;
            rev[c.to.index()].push((c.from.index(), ChannelId(i as u32), cost));
        }
        let mut dist = vec![f64::INFINITY; n];
        let mut towards: Vec<Option<ChannelId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[dst.index()] = 0.0;
        heap.push(Reverse((OrdF64(0.0), dst.index())));
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for (v, ch, cost) in &rev[u] {
                let alt = d + cost;
                if alt < dist[*v] {
                    dist[*v] = alt;
                    towards[*v] = Some(*ch);
                    heap.push(Reverse((OrdF64(alt), *v)));
                }
            }
        }
        towards
    }

    /// The ordered external channels on the path `src → dst`, or `None`
    /// if unreachable. Backplane channels of transited switches are
    /// inserted where packets would cross them.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<ChannelId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let fw = self.forwarding_to(dst);
        let mut path = Vec::new();
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let ch = fw[cur.index()]?;
            // entering a finite-backplane switch costs its internal channel
            path.push(ch);
            cur = self.channels[ch.index()].to;
            if cur != dst {
                if let Some(bp) = self.nodes[cur.index()].backplane_channel {
                    path.push(bp);
                }
            }
            hops += 1;
            if hops > self.nodes.len() {
                return None; // defensive: no loops expected
            }
        }
        Some(path)
    }

    /// One-way propagation latency of the `src → dst` path (sum of channel
    /// delays), or `None` if unreachable.
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let p = self.path(src, dst)?;
        Some(p.iter().map(|c| self.channels[c.index()].delay).sum())
    }
}

#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Builder for [`Network`].
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    channels: Vec<ChannelSpec>,
    by_name: HashMap<String, NodeId>,
}

impl NetworkBuilder {
    /// Creates an empty network.
    pub fn new() -> Self {
        NetworkBuilder { nodes: Vec::new(), channels: Vec::new(), by_name: HashMap::new() }
    }

    fn add_node(&mut self, name: &str, kind: NodeKind, backplane: f64) -> NodeId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate node name '{name}'"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            backplane,
            backplane_channel: None,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Adds a host.
    pub fn add_host(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Host, f64::INFINITY)
    }

    /// Adds a non-blocking switch.
    pub fn add_switch(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Switch, f64::INFINITY)
    }

    /// Adds a switch whose aggregate forwarding capacity is limited to
    /// `backplane` bytes/s — the equipment limit the paper's generated
    /// platform lacks.
    pub fn add_limited_switch(&mut self, name: &str, backplane: f64) -> NodeId {
        assert!(backplane > 0.0, "backplane must be positive");
        self.add_node(name, NodeKind::Switch, backplane)
    }

    /// Connects two nodes with a full-duplex link (two directed channels).
    /// `queue_bytes` bounds each direction's drop-tail egress queue.
    pub fn duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate: f64,
        delay: f64,
        queue_bytes: f64,
    ) -> (ChannelId, ChannelId) {
        assert!(rate > 0.0 && delay >= 0.0 && queue_bytes > 0.0, "bad link parameters");
        let ab = ChannelId(self.channels.len() as u32);
        self.channels.push(ChannelSpec {
            from: a,
            to: b,
            rate,
            delay,
            queue_bytes,
            internal: false,
        });
        let ba = ChannelId(self.channels.len() as u32);
        self.channels.push(ChannelSpec {
            from: b,
            to: a,
            rate,
            delay,
            queue_bytes,
            internal: false,
        });
        (ab, ba)
    }

    /// Freezes the network, materializing backplane channels.
    pub fn build(mut self) -> Network {
        for i in 0..self.nodes.len() {
            if self.nodes[i].kind == NodeKind::Switch && self.nodes[i].backplane.is_finite() {
                let id = ChannelId(self.channels.len() as u32);
                let node_id = NodeId(i as u32);
                self.channels.push(ChannelSpec {
                    from: node_id,
                    to: node_id,
                    rate: self.nodes[i].backplane,
                    delay: 0.0,
                    // generous internal buffering: one millisecond's worth
                    queue_bytes: (self.nodes[i].backplane * 1e-3).max(1.5e6),
                    internal: true,
                });
                self.nodes[i].backplane_channel = Some(id);
            }
        }
        Network { nodes: self.nodes, channels: self.channels, by_name: self.by_name }
    }
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// h1 - sw - h2 line.
    fn line() -> (Network, NodeId, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, sw, 1.25e8, 2e-5, 1e6);
        b.duplex_link(sw, h2, 1.25e8, 2e-5, 1e6);
        let n = b.build();
        (n, h1, sw, h2)
    }

    #[test]
    fn path_through_switch() {
        let (n, h1, _, h2) = line();
        let p = n.path(h1, h2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(n.channel(p[0]).from, h1);
        assert_eq!(n.channel(p[1]).to, h2);
        assert!((n.path_latency(h1, h2).unwrap() - 4e-5).abs() < 1e-12);
    }

    #[test]
    fn self_path_is_empty() {
        let (n, h1, _, _) = line();
        assert_eq!(n.path(h1, h1).unwrap().len(), 0);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let h2 = b.add_host("h2");
        let n = b.build();
        assert!(n.path(h1, h2).is_none());
    }

    #[test]
    fn limited_switch_inserts_backplane_channel() {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_limited_switch("sw", 2.4e9);
        let h2 = b.add_host("h2");
        b.duplex_link(h1, sw, 1.25e8, 2e-5, 1e6);
        b.duplex_link(sw, h2, 1.25e8, 2e-5, 1e6);
        let n = b.build();
        let p = n.path(h1, h2).unwrap();
        // up, backplane, down
        assert_eq!(p.len(), 3);
        assert!(n.channel(p[1]).internal);
        assert_eq!(n.channel(p[1]).rate, 2.4e9);
    }

    #[test]
    fn backplane_not_crossed_at_terminal_switch() {
        // path ending at the switch itself shouldn't append the backplane
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_limited_switch("sw", 2.4e9);
        b.duplex_link(h1, sw, 1.25e8, 2e-5, 1e6);
        let n = b.build();
        let p = n.path(h1, sw).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn shortest_latency_path_is_chosen() {
        // h1 -(fast)- sw1 -(fast)- h2 ; h1 -(slow direct)- h2
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, h2, 1.25e8, 5e-3, 1e6);
        b.duplex_link(h1, sw, 1.25e9, 2e-5, 1e6);
        b.duplex_link(sw, h2, 1.25e9, 2e-5, 1e6);
        let n = b.build();
        let p = n.path(h1, h2).unwrap();
        assert_eq!(p.len(), 2, "low-latency 2-hop path wins");
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_panic() {
        let mut b = NetworkBuilder::new();
        b.add_host("x");
        b.add_host("x");
    }
}
