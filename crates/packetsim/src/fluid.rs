//! RTT-round fluid TCP: the scalable ground-truth engine.
//!
//! Per-segment simulation of the paper's full parameter sweep (up to 60
//! concurrent 10 GB transfers, ten repetitions per point) would take
//! billions of events — the exact pathology the paper ascribes to
//! packet-level simulators. The fluid engine keeps the *connection
//! lifecycle* of real TCP but replaces segments with rates:
//!
//! * connection setup costs 1.5 RTT before the first data byte;
//! * slow start doubles the congestion window once per RTT, the flow's
//!   rate being `min(cwnd/RTT, fair share)`; hitting the fair-share limit
//!   is a loss event that ends slow start;
//! * in steady state flows get a weighted max-min share of the *true*
//!   topology — including finite switch backplanes, which the predictor's
//!   platform model deliberately omits (as the paper's did) — scaled by a
//!   protocol-efficiency factor, lower when the flow's path is saturated
//!   (loss recovery) than when it is window-limited;
//! * the final ACK costs half an RTT.
//!
//! Steady-state shares use the same progressive-filling solver as the
//! predictor ([`simflow::model`]), which is not circular: the *inputs*
//! differ (true capacities + equipment limits + efficiency + noise versus
//! the model's nominal description), and that difference is precisely what
//! the paper measures. Agreement with the per-segment engine is checked in
//! `tests/agreement.rs`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simflow::model::SharingProblem;

use crate::engine::FlowSpec;
use crate::net::Network;
use crate::tcp::TcpConfig;

/// Tuning of the fluid model (calibrated against the packet engine).
#[derive(Clone, Copy, Debug)]
pub struct FluidParams {
    /// Goodput fraction of the fair share achieved by a window-limited
    /// (uncontended) flow: residual protocol cost beyond wire overhead.
    pub eff_uncontended: f64,
    /// Goodput fraction achieved by a flow whose path is saturated:
    /// loss-recovery sawtooth cost.
    pub eff_contended: f64,
    /// Standard deviation of the per-flow lognormal throughput noise
    /// standing in for residual cross-traffic (the paper averages 10
    /// repetitions to suppress it; we generate it so the repetitions have
    /// something to average).
    pub noise_sigma: f64,
}

impl Default for FluidParams {
    fn default() -> Self {
        FluidParams { eff_uncontended: 0.995, eff_contended: 0.93, noise_sigma: 0.03 }
    }
}

/// Outcome of one fluid flow.
#[derive(Clone, Copy, Debug)]
pub struct FluidResult {
    /// Completion time (absolute, seconds).
    pub completion: f64,
    /// True if the flow ever ran against a saturated resource.
    pub was_contended: bool,
}

impl FluidResult {
    /// Duration relative to the spec's start time.
    pub fn duration(&self, spec: &FlowSpec) -> f64 {
        self.completion - spec.start
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Phase {
    /// Handshake in progress; data starts at the associated time.
    Connecting,
    /// Window doubling per RTT.
    SlowStart,
    /// Fair-share limited.
    Steady,
    Done,
}

struct FlowState {
    resources: Vec<u32>,
    rtt: f64,
    phase: Phase,
    data_start: f64,
    cwnd: f64, // bytes
    remaining: f64,
    rate: f64,
    round_gen: u64,
    eff_noise: f64,
    contended: bool,
    completion: f64,
}

/// The fluid simulator.
pub struct FluidSim<'n> {
    net: &'n Network,
    cfg: TcpConfig,
    params: FluidParams,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Ev {
    DataStart(u32),
    Round { flow: u32, gen: u64 },
}

impl<'n> FluidSim<'n> {
    /// Creates a fluid simulator over the true network.
    pub fn new(net: &'n Network, cfg: TcpConfig, params: FluidParams) -> Self {
        FluidSim { net, cfg, params }
    }

    /// Runs all flows; `seed` drives the per-flow noise (pass a different
    /// seed per repetition, as the experiment harness does).
    ///
    /// # Panics
    /// Panics if a flow's endpoints are not connected.
    pub fn run(&self, flows: &[FlowSpec], seed: u64) -> Vec<FluidResult> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut rng = SmallRng::seed_from_u64(seed);
        let wire_eff = self.cfg.wire_efficiency();
        // Resource capacities in goodput bytes/s.
        let capacities: Vec<f64> = (0..self.net.channel_count())
            .map(|c| self.net.channel(crate::net::ChannelId(c as u32)).rate * wire_eff)
            .collect();

        let mut states: Vec<FlowState> = flows
            .iter()
            .map(|f| {
                let path = self.net.path(f.src, f.dst).unwrap_or_else(|| {
                    panic!(
                        "no path {} → {}",
                        self.net.node_name(f.src),
                        self.net.node_name(f.dst)
                    )
                });
                let delay: f64 = path.iter().map(|c| self.net.channel(*c).delay).sum();
                let per_hop: f64 = path
                    .iter()
                    .map(|c| (self.cfg.mss + self.cfg.header_overhead) / self.net.channel(*c).rate)
                    .sum();
                let rtt = (2.0 * delay + per_hop).max(1e-6);
                let noise = (self.params.noise_sigma * gaussian(&mut rng)).exp();
                FlowState {
                    resources: path.iter().map(|c| c.index() as u32).collect(),
                    rtt,
                    phase: Phase::Connecting,
                    data_start: f.start + 1.5 * rtt,
                    cwnd: self.cfg.init_cwnd * self.cfg.mss,
                    remaining: f.bytes,
                    rate: 0.0,
                    round_gen: 0,
                    eff_noise: noise,
                    contended: false,
                    completion: f64::NAN,
                }
            })
            .collect();

        // Event queue: (time, seq, event).
        let mut heap: BinaryHeap<Reverse<(F64Ord, u64, Ev)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push = |heap: &mut BinaryHeap<_>, seq: &mut u64, t: f64, ev: Ev| {
            heap.push(Reverse((F64Ord(t), *seq, ev)));
            *seq += 1;
        };

        let mut remaining_flows = 0usize;
        for (i, st) in states.iter_mut().enumerate() {
            if st.resources.is_empty() {
                // same-host flow: instantaneous at this level
                st.phase = Phase::Done;
                st.completion = flows[i].start;
                continue;
            }
            remaining_flows += 1;
            push(&mut heap, &mut seq, st.data_start, Ev::DataStart(i as u32));
        }

        let rwnd = self.cfg.max_window_bytes;
        let mut now = 0.0f64;

        // Re-allocates shares among running flows; returns whether each
        // running flow is congestion-limited this epoch.
        let reallocate = |states: &mut [FlowState], params: &FluidParams| {
            let mut problem = SharingProblem::with_capacities(capacities.clone());
            let mut idx = Vec::new();
            for (i, st) in states.iter().enumerate() {
                if st.phase == Phase::SlowStart || st.phase == Phase::Steady {
                    let window = match st.phase {
                        Phase::SlowStart => st.cwnd.min(rwnd),
                        _ => rwnd,
                    };
                    problem.add_flow(st.resources.clone(), st.rtt, window / st.rtt);
                    idx.push(i);
                }
            }
            let rates = problem.solve();
            // a flow is contended when it did not get its full window-cap
            // demand — its bottleneck is shared, i.e. packets are dropping
            for (slot, &i) in idx.iter().enumerate() {
                let st = &mut states[i];
                let window = match st.phase {
                    Phase::SlowStart => st.cwnd.min(rwnd),
                    _ => rwnd,
                };
                let demand = window / st.rtt;
                let congested = rates[slot] < demand * 0.999;
                let eff = if congested { params.eff_contended } else { params.eff_uncontended };
                if congested && st.phase == Phase::Steady {
                    st.contended = true;
                }
                st.rate = rates[slot] * eff * st.eff_noise;
            }
        };

        while remaining_flows > 0 {
            // next event / next completion
            let next_event = heap.peek().map(|Reverse((F64Ord(t), _, _))| *t);
            let mut next_completion = f64::INFINITY;
            for st in &states {
                if matches!(st.phase, Phase::SlowStart | Phase::Steady) && st.rate > 0.0 {
                    let t = now + st.remaining / st.rate;
                    if t < next_completion {
                        next_completion = t;
                    }
                }
            }
            let t = match next_event {
                Some(e) => e.min(next_completion),
                None => next_completion,
            };
            assert!(t.is_finite(), "fluid simulation stalled at t={now}");

            // integrate
            let dt = (t - now).max(0.0);
            if dt > 0.0 {
                for st in &mut states {
                    if matches!(st.phase, Phase::SlowStart | Phase::Steady) && st.rate > 0.0 {
                        st.remaining = (st.remaining - st.rate * dt).max(0.0);
                    }
                }
            }
            now = t;

            let mut changed = false;

            // completions — tolerance relative to the flow size: the
            // rate×Δt integration leaves a residue of a few ulps of the
            // total, which for 10 GB transfers exceeds any absolute cutoff
            for (st, f) in states.iter_mut().zip(flows) {
                let tol = 1e-9 * f.bytes.max(1.0) + 1e-6;
                if matches!(st.phase, Phase::SlowStart | Phase::Steady) && st.remaining <= tol {
                    st.phase = Phase::Done;
                    st.completion = now + 0.5 * st.rtt; // final ACK
                    remaining_flows -= 1;
                    changed = true;
                }
            }

            // events
            while let Some(Reverse((F64Ord(te), _, _))) = heap.peek() {
                if *te > now {
                    break;
                }
                let Reverse((_, _, ev)) = heap.pop().expect("peeked");
                match ev {
                    Ev::DataStart(i) => {
                        let st = &mut states[i as usize];
                        if st.phase == Phase::Connecting {
                            if st.remaining <= 0.0 {
                                st.phase = Phase::Done;
                                st.completion = now;
                                remaining_flows -= 1;
                            } else {
                                st.phase = Phase::SlowStart;
                                st.round_gen += 1;
                                let gen = st.round_gen;
                                let tr = now + st.rtt;
                                push(&mut heap, &mut seq, tr, Ev::Round { flow: i, gen });
                            }
                            changed = true;
                        }
                    }
                    Ev::Round { flow, gen } => {
                        let i = flow as usize;
                        if states[i].phase == Phase::SlowStart && states[i].round_gen == gen {
                            // congestion during the round ends slow start
                            let window_rate = states[i].cwnd.min(rwnd) / states[i].rtt;
                            let throttled = states[i].rate
                                < window_rate * self.params.eff_uncontended * states[i].eff_noise * 0.9;
                            states[i].cwnd = (states[i].cwnd * 2.0).min(rwnd);
                            if throttled || states[i].cwnd >= rwnd {
                                states[i].phase = Phase::Steady;
                            } else {
                                states[i].round_gen += 1;
                                let g = states[i].round_gen;
                                let tr = now + states[i].rtt;
                                push(&mut heap, &mut seq, tr, Ev::Round { flow, gen: g });
                            }
                            changed = true;
                        }
                    }
                }
            }

            if changed {
                reallocate(&mut states, &self.params);
            }
        }

        states
            .into_iter()
            .map(|st| FluidResult { completion: st.completion, was_contended: st.contended })
            .collect()
    }
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[derive(Clone, Copy, PartialEq)]
struct F64Ord(f64);
impl Eq for F64Ord {}
impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkBuilder;
    use crate::net::NodeId;

    fn gige_line() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, sw, 1.25e8, 2e-5, 5e5);
        b.duplex_link(sw, h2, 1.25e8, 2e-5, 5e5);
        let n = b.build();
        let h1 = n.node_by_name("h1").unwrap();
        let h2 = n.node_by_name("h2").unwrap();
        (n, h1, h2)
    }

    fn no_noise() -> FluidParams {
        FluidParams { noise_sigma: 0.0, ..FluidParams::default() }
    }

    #[test]
    fn large_flow_near_line_rate() {
        let (n, h1, h2) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e9, start: 0.0 };
        let d = sim.run(&[spec], 1)[0].duration(&spec);
        let ideal = 1e9 / (1.25e8 * TcpConfig::default().wire_efficiency());
        assert!(d > ideal && d < ideal * 1.1, "{d} vs {ideal}");
    }

    #[test]
    fn small_flow_pays_rtt_rounds() {
        let (n, h1, h2) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e5, start: 0.0 };
        let d = sim.run(&[spec], 1)[0].duration(&spec);
        let raw = 1e5 / (1.25e8 * 0.949);
        assert!(d > 1.3 * raw, "handshake + slow start must show up: {d} vs {raw}");
    }

    #[test]
    fn two_flows_split_evenly() {
        let (n, h1, h2) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let a = FlowSpec { src: h1, dst: h2, bytes: 5e8, start: 0.0 };
        let b = FlowSpec { src: h1, dst: h2, bytes: 5e8, start: 0.0 };
        let res = sim.run(&[a, b], 1);
        let (da, db) = (res[0].duration(&a), res[1].duration(&b));
        let solo = 5e8 / (1.25e8 * 0.949);
        assert!((da - db).abs() < 1e-3 * da);
        assert!(da > 1.9 * solo && da < 2.4 * solo, "{da} vs solo {solo}");
        assert!(res[0].was_contended);
    }

    #[test]
    fn backplane_limit_throttles_aggregate() {
        // 8 hosts pairwise through a switch whose backplane only carries
        // 4 Gbit/s of the 8 Gbit/s offered.
        let mut b = NetworkBuilder::new();
        let sw = b.add_limited_switch("sw", 5e8);
        let mut hosts = Vec::new();
        for i in 0..16 {
            let h = b.add_host(&format!("h{i}"));
            b.duplex_link(h, sw, 1.25e8, 2e-5, 5e5);
            hosts.push(h);
        }
        let n = b.build();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec {
                src: n.node_by_name(&format!("h{i}")).unwrap(),
                dst: n.node_by_name(&format!("h{}", i + 8)).unwrap(),
                bytes: 5e8,
                start: 0.0,
            })
            .collect();
        let res = sim.run(&specs, 1);
        // without backplane: ≈ 4.2 s each; with 500 MB/s backplane:
        // 8 flows × 62.5 MB/s → ≈ 8.4 s each
        for (r, s) in res.iter().zip(&specs) {
            let d = r.duration(s);
            assert!(d > 7.0, "backplane must bite: {d}");
            assert!(r.was_contended);
        }
    }

    #[test]
    fn window_cap_limits_long_paths() {
        // 10 Gbit/s path with 25 ms one-way latency: rwnd/rtt ≈ 83 MB/s.
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, h2, 1.25e9, 2.5e-2, 5e6);
        let n = b.build();
        let (h1, h2) = (n.node_by_name("h1").unwrap(), n.node_by_name("h2").unwrap());
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e9, start: 0.0 };
        let res = sim.run(&[spec], 1);
        let d = res[0].duration(&spec);
        let window_rate = 4_194_304.0 / 0.05;
        let expect = 1e9 / window_rate;
        assert!(d > expect * 0.9, "window cap must bind: {d} vs {expect}");
        assert!(!res[0].was_contended, "window-limited, not congested");
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let (n, h1, h2) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), FluidParams::default());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e8, start: 0.0 };
        let a = sim.run(&[spec], 7)[0].completion;
        let b = sim.run(&[spec], 7)[0].completion;
        let c = sim.run(&[spec], 8)[0].completion;
        assert_eq!(a, b, "same seed, same result");
        assert_ne!(a, c, "different seed perturbs");
    }

    #[test]
    fn same_host_flow_is_instant() {
        let (n, h1, _) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let spec = FlowSpec { src: h1, dst: h1, bytes: 1e9, start: 2.5 };
        let res = sim.run(&[spec], 1);
        assert_eq!(res[0].completion, 2.5);
    }

    #[test]
    fn zero_bytes_costs_handshake() {
        let (n, h1, h2) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 0.0, start: 0.0 };
        let d = sim.run(&[spec], 1)[0].duration(&spec);
        assert!(d > 0.0 && d < 1e-3);
    }

    #[test]
    fn staggered_flows_overlap_correctly() {
        let (n, h1, h2) = gige_line();
        let sim = FluidSim::new(&n, TcpConfig::default(), no_noise());
        let a = FlowSpec { src: h1, dst: h2, bytes: 1e9, start: 0.0 };
        let b = FlowSpec { src: h1, dst: h2, bytes: 1e9, start: 4.0 };
        let res = sim.run(&[a, b], 1);
        let da = res[0].duration(&a);
        // a alone would take ≈ 8.4 s; b joins at 4 s, halving a's rate
        // (and adding the contended-efficiency cost): a ≈ 13–14.5 s
        assert!(da > 10.0 && da < 15.0, "{da}");
        assert!(res[1].completion > res[0].completion);
    }
}
