//! The per-segment discrete-event engine.
//!
//! Every data segment, ACK and handshake packet is an individually
//! simulated unit: serialized on each channel of its path (drop-tail
//! queues, finite rates, propagation delays), delivered to TCP endpoint
//! state machines implementing connection setup, slow start, CUBIC/Reno
//! congestion avoidance, delayed ACKs, fast retransmit with NewReno-style
//! partial-ACK recovery, and retransmission timeouts.
//!
//! This engine is the reproduction's stand-in for *running iperf on real
//! hardware*: it produces completion times that include everything the
//! flow-level predictor abstracts away. It is deliberately not fast — the
//! paper makes the same point about packet-level simulation ("it will be
//! faster to actually perform the network transfers rather than simulate
//! it") — which is why the experiment harness uses [`crate::fluid`] at
//! scale, validated against this engine.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::net::{ChannelId, Network, NodeId};
use crate::tcp::{CcState, RttEstimator, TcpConfig};

/// One requested transfer.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Payload bytes to deliver.
    pub bytes: f64,
    /// Time the sender initiates the connection.
    pub start: f64,
}

/// Outcome of one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowResult {
    /// Time the sender saw the final cumulative ACK (`None` only if the
    /// simulation hit its event budget).
    pub completion: Option<f64>,
    /// Number of retransmitted segments.
    pub retransmits: u64,
    /// Segments dropped on queues along this flow's path (attributed to
    /// the flow whose packet was dropped).
    pub drops: u64,
}

impl FlowResult {
    /// Transfer duration (completion − start) if the flow finished.
    pub fn duration(&self, spec: &FlowSpec) -> Option<f64> {
        self.completion.map(|c| c - spec.start)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum PktKind {
    Syn,
    SynAck,
    Data { seq: u64, payload: f64 },
    /// Cumulative ACK. `more_holes` stands in for SACK blocks (the paper's
    /// Linux 2.6.32 stack has SACK enabled): it tells the sender that the
    /// receiver buffers data beyond the hole at `cum`, so the hole should
    /// be repaired without waiting for a timeout.
    Ack { cum: u64, more_holes: bool },
}

#[derive(Clone, Copy, Debug)]
struct Packet {
    flow: u32,
    kind: PktKind,
    wire: f64,
    /// Index of the next hop to take on the flow's (directional) path.
    hop: u16,
    /// false: sender→receiver path; true: reverse.
    reverse: bool,
}

#[derive(Debug)]
enum Ev {
    FlowStart(u32),
    /// A channel finished serializing its head packet.
    TxDone(ChannelId),
    /// A packet reaches the end of a channel (after propagation).
    Arrive(Packet),
    /// Retransmission timer.
    Rto { flow: u32, gen: u64 },
    /// Delayed-ACK timer.
    DelAck { flow: u32, gen: u64 },
}

struct HeapEntry {
    t: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap via reversal
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct ChannelState {
    queue: VecDeque<Packet>,
    queued_bytes: f64,
    busy: bool,
    drops: u64,
    /// Wire bytes fully serialized on this channel.
    carried_bytes: f64,
    /// Time spent transmitting (for utilization).
    busy_time: f64,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum SenderPhase {
    Idle,
    Handshake,
    Established,
    Recovery { recover: u64 },
    Complete,
}

struct Sender {
    total_segs: u64,
    next_seq: u64,
    una: u64,
    phase: SenderPhase,
    cc: CcState,
    est: RttEstimator,
    dup_acks: u32,
    rto_gen: u64,
    /// (seq, send time) of the segment currently timed for an RTT sample.
    sample: Option<(u64, f64)>,
    retransmits: u64,
    completion: Option<f64>,
}

struct Receiver {
    total_segs: u64,
    rcv_next: u64,
    ooo: BTreeSet<u64>,
    unacked_segs: u32,
    delack_gen: u64,
}

/// Post-run statistics of one directed channel.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelStats {
    /// Wire bytes fully serialized.
    pub carried_bytes: f64,
    /// Packets dropped at the queue.
    pub drops: u64,
    /// Fraction of the run the channel spent transmitting.
    pub utilization: f64,
}

/// Flow results plus per-channel accounting.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-flow outcomes, in request order.
    pub flows: Vec<FlowResult>,
    /// Per-channel statistics, indexed like the network's channels.
    pub channels: Vec<ChannelStats>,
    /// Simulated time of the last event.
    pub end_time: f64,
}

/// The packet-level simulator.
pub struct PacketSim<'n> {
    net: &'n Network,
    cfg: TcpConfig,
    /// Hard event budget; the engine stops and reports incomplete flows
    /// beyond it (defensive, never hit in the test workloads).
    pub max_events: u64,
}

impl<'n> PacketSim<'n> {
    /// Creates a simulator over `net` with TCP parameters `cfg`.
    pub fn new(net: &'n Network, cfg: TcpConfig) -> Self {
        PacketSim { net, cfg, max_events: 2_000_000_000 }
    }

    /// Runs all `flows` to completion and returns per-flow results.
    ///
    /// # Panics
    /// Panics if a flow's endpoints are not connected.
    pub fn run(&self, flows: &[FlowSpec]) -> Vec<FlowResult> {
        self.run_with_stats(flows).flows
    }

    /// Like [`PacketSim::run`], additionally returning per-channel
    /// accounting (bytes carried, drops, utilization).
    pub fn run_with_stats(&self, flows: &[FlowSpec]) -> RunReport {
        Runner::new(self.net, self.cfg, flows, self.max_events).run()
    }
}

struct Runner<'n> {
    net: &'n Network,
    cfg: TcpConfig,
    flows: Vec<FlowSpec>,
    fwd: Vec<Vec<ChannelId>>,
    rev: Vec<Vec<ChannelId>>,
    senders: Vec<Sender>,
    receivers: Vec<Receiver>,
    channels: Vec<ChannelState>,
    flow_drops: Vec<u64>,
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    now: f64,
    remaining_flows: usize,
    max_events: u64,
}

impl<'n> Runner<'n> {
    fn new(net: &'n Network, cfg: TcpConfig, flows: &[FlowSpec], max_events: u64) -> Self {
        let mut fwd = Vec::with_capacity(flows.len());
        let mut rev = Vec::with_capacity(flows.len());
        let mut senders = Vec::with_capacity(flows.len());
        let mut receivers = Vec::with_capacity(flows.len());
        for f in flows {
            let p = net
                .path(f.src, f.dst)
                .unwrap_or_else(|| panic!("no path {} → {}", net.node_name(f.src), net.node_name(f.dst)));
            let r = net
                .path(f.dst, f.src)
                .unwrap_or_else(|| panic!("no reverse path"));
            fwd.push(p);
            rev.push(r);
            let total_segs = (f.bytes / cfg.mss).ceil() as u64;
            senders.push(Sender {
                total_segs,
                next_seq: 0,
                una: 0,
                phase: SenderPhase::Idle,
                cc: CcState::new(&cfg),
                est: RttEstimator::new(&cfg),
                dup_acks: 0,
                rto_gen: 0,
                sample: None,
                retransmits: 0,
                completion: None,
            });
            receivers.push(Receiver {
                total_segs,
                rcv_next: 0,
                ooo: BTreeSet::new(),
                unacked_segs: 0,
                delack_gen: 0,
            });
        }
        let channels = (0..net.channel_count())
            .map(|_| ChannelState {
                queue: VecDeque::new(),
                queued_bytes: 0.0,
                busy: false,
                drops: 0,
                carried_bytes: 0.0,
                busy_time: 0.0,
            })
            .collect();
        Runner {
            net,
            cfg,
            flows: flows.to_vec(),
            fwd,
            rev,
            senders,
            receivers,
            channels,
            flow_drops: vec![0; flows.len()],
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            remaining_flows: flows.len(),
            max_events,
        }
    }

    fn push(&mut self, t: f64, ev: Ev) {
        self.heap.push(HeapEntry { t, seq: self.seq, ev });
        self.seq += 1;
    }

    /// Injects a packet on the first (or next) channel of its path.
    fn transmit(&mut self, pkt: Packet) {
        let f = pkt.flow as usize;
        let path = if pkt.reverse { &self.rev[f] } else { &self.fwd[f] };
        if pkt.hop as usize >= path.len() {
            // zero-hop path (src == dst): deliver immediately
            self.deliver(pkt);
            return;
        }
        let ch_id = path[pkt.hop as usize];
        let spec_queue = self.net.channel(ch_id).queue_bytes;
        let ch = &mut self.channels[ch_id.index()];
        if ch.queued_bytes + pkt.wire > spec_queue {
            ch.drops += 1;
            self.flow_drops[f] += 1;
            return; // drop-tail
        }
        ch.queued_bytes += pkt.wire;
        ch.queue.push_back(pkt);
        if !ch.busy {
            ch.busy = true;
            let rate = self.net.channel(ch_id).rate;
            let head_wire = self.channels[ch_id.index()].queue.front().unwrap().wire;
            let t = self.now + head_wire / rate;
            self.push(t, Ev::TxDone(ch_id));
        }
    }

    fn on_txdone(&mut self, ch_id: ChannelId) {
        let spec = self.net.channel(ch_id);
        let (rate, delay) = (spec.rate, spec.delay);
        let ch = &mut self.channels[ch_id.index()];
        let mut pkt = ch.queue.pop_front().expect("TxDone with empty queue");
        ch.queued_bytes -= pkt.wire;
        ch.carried_bytes += pkt.wire;
        ch.busy_time += pkt.wire / rate;
        if let Some(next) = ch.queue.front() {
            let t = self.now + next.wire / rate;
            self.push(t, Ev::TxDone(ch_id));
        } else {
            ch.busy = false;
        }
        pkt.hop += 1;
        self.push(self.now + delay, Ev::Arrive(pkt));
    }

    fn deliver(&mut self, pkt: Packet) {
        let f = pkt.flow as usize;
        let path = if pkt.reverse { &self.rev[f] } else { &self.fwd[f] };
        if (pkt.hop as usize) < path.len() {
            // still in transit: forward on the next channel
            self.transmit(pkt);
            return;
        }
        // endpoint reached
        match pkt.kind {
            PktKind::Syn => self.receiver_on_syn(f),
            PktKind::SynAck => self.sender_on_synack(f),
            PktKind::Data { seq, .. } => self.receiver_on_data(f, seq),
            PktKind::Ack { cum, more_holes } => self.sender_on_ack(f, cum, more_holes),
        }
    }

    // ---- sender side ----------------------------------------------------

    fn arm_rto(&mut self, f: usize) {
        self.senders[f].rto_gen += 1;
        let gen = self.senders[f].rto_gen;
        let t = self.now + self.senders[f].est.rto;
        self.push(t, Ev::Rto { flow: f as u32, gen });
    }

    fn send_syn(&mut self, f: usize) {
        let pkt = Packet {
            flow: f as u32,
            kind: PktKind::Syn,
            wire: self.cfg.header_overhead,
            hop: 0,
            reverse: false,
        };
        self.transmit(pkt);
        self.arm_rto(f);
    }

    fn sender_on_synack(&mut self, f: usize) {
        if self.senders[f].phase != SenderPhase::Handshake {
            return; // duplicate SYNACK after retransmit
        }
        self.senders[f].phase = SenderPhase::Established;
        // handshake RTT is a valid sample
        let start = self.flows[f].start;
        self.senders[f].est.sample(self.now - start);
        if self.senders[f].total_segs == 0 {
            self.complete(f);
            return;
        }
        self.send_available(f);
        self.arm_rto(f);
    }

    fn send_segment(&mut self, f: usize, seq: u64, retransmission: bool) {
        let s = &mut self.senders[f];
        let payload = if seq + 1 == s.total_segs {
            let full = (s.total_segs - 1) as f64 * self.cfg.mss;
            (self.flows[f].bytes - full).max(1.0)
        } else {
            self.cfg.mss
        };
        if retransmission {
            s.retransmits += 1;
            if s.sample.is_some_and(|(sq, _)| sq == seq) {
                s.sample = None; // Karn's rule: never time retransmits
            }
        } else if s.sample.is_none() {
            s.sample = Some((seq, self.now));
        }
        let pkt = Packet {
            flow: f as u32,
            kind: PktKind::Data { seq, payload },
            wire: payload + self.cfg.header_overhead,
            hop: 0,
            reverse: false,
        };
        self.transmit(pkt);
    }

    /// Maximum new segments released per ACK event. Real stacks are
    /// ACK-clocked: even a huge window opening (e.g. a cumulative ACK
    /// covering hundreds of repaired holes) does not dump a window-sized
    /// line-rate burst into a small switch buffer — transmission is paced
    /// by returning ACKs. Without this cap, every recovery exit bursts
    /// `cwnd` segments at once, tail-drops the burst, and stalls into
    /// escalating RTOs.
    const MAX_BURST: u64 = 8;

    fn send_available(&mut self, f: usize) {
        let mut sent = 0u64;
        loop {
            let s = &self.senders[f];
            if s.next_seq >= s.total_segs || sent >= Self::MAX_BURST {
                break;
            }
            let window = s.cc.cwnd.min(self.cfg.max_window_segs()).floor().max(1.0);
            if (s.next_seq - s.una) as f64 >= window {
                break;
            }
            let seq = s.next_seq;
            self.senders[f].next_seq += 1;
            self.send_segment(f, seq, false);
            sent += 1;
        }
    }

    fn complete(&mut self, f: usize) {
        let s = &mut self.senders[f];
        if s.phase != SenderPhase::Complete {
            s.phase = SenderPhase::Complete;
            s.completion = Some(self.now);
            s.rto_gen += 1; // disarm timer
            self.remaining_flows -= 1;
        }
    }

    fn sender_on_ack(&mut self, f: usize, cum: u64, more_holes: bool) {
        let phase = self.senders[f].phase;
        if phase == SenderPhase::Complete || phase == SenderPhase::Idle {
            return;
        }
        let una = self.senders[f].una;
        if cum > una {
            let newly = (cum - una) as f64;
            self.senders[f].una = cum;
            self.senders[f].dup_acks = 0;
            // forward progress cancels any timeout backoff
            self.senders[f].est.on_progress();
            // RTT sample
            if let Some((sq, t0)) = self.senders[f].sample {
                if cum > sq {
                    let rtt = self.now - t0;
                    self.senders[f].est.sample(rtt);
                    self.senders[f].sample = None;
                }
            }
            match self.senders[f].phase {
                SenderPhase::Recovery { recover } => {
                    if cum >= recover {
                        // full ACK: deflate back to ssthresh and resume
                        let ss = self.senders[f].cc.ssthresh;
                        self.senders[f].cc.cwnd = ss;
                        self.senders[f].phase = SenderPhase::Established;
                        if more_holes {
                            // losses beyond the recovery point (e.g. from a
                            // burst): keep repairing, SACK-style
                            self.send_segment(f, cum, true);
                        }
                    } else {
                        // NewReno partial ACK: retransmit the next hole
                        self.send_segment(f, cum, true);
                    }
                }
                _ => {
                    let srtt = self.senders[f].est.srtt_or(0.001);
                    let cap = self.cfg.max_window_segs();
                    let now = self.now;
                    self.senders[f].cc.on_ack(newly, now, srtt, cap);
                    if more_holes {
                        // receiver buffers data beyond this hole: repair it
                        self.send_segment(f, cum, true);
                    }
                }
            }
            if self.senders[f].una >= self.senders[f].total_segs {
                self.complete(f);
                return;
            }
            self.send_available(f);
            self.arm_rto(f);
        } else if cum == una {
            // duplicate ACK
            if matches!(self.senders[f].phase, SenderPhase::Recovery { .. }) {
                return; // the partial-ACK clock drives recovery
            }
            self.senders[f].dup_acks += 1;
            if self.senders[f].dup_acks == 3 {
                let now = self.now;
                let recover = self.senders[f].next_seq;
                self.senders[f].cc.on_loss(now);
                self.senders[f].phase = SenderPhase::Recovery { recover };
                self.senders[f].dup_acks = 0;
                self.send_segment(f, una, true);
                self.arm_rto(f);
            }
        }
    }

    fn on_rto(&mut self, f: usize, gen: u64) {
        let s = &self.senders[f];
        if gen != s.rto_gen || s.phase == SenderPhase::Complete {
            return;
        }
        match s.phase {
            SenderPhase::Handshake => {
                self.senders[f].est.backoff();
                self.send_syn(f);
            }
            SenderPhase::Established | SenderPhase::Recovery { .. } => {
                let una = self.senders[f].una;
                self.senders[f].cc.on_timeout();
                self.senders[f].est.backoff();
                self.senders[f].phase = SenderPhase::Established;
                self.senders[f].dup_acks = 0;
                self.send_segment(f, una, true);
                self.arm_rto(f);
            }
            SenderPhase::Idle | SenderPhase::Complete => {}
        }
    }

    // ---- receiver side --------------------------------------------------

    fn send_ack(&mut self, f: usize) {
        let cum = self.receivers[f].rcv_next;
        let more_holes = !self.receivers[f].ooo.is_empty();
        self.receivers[f].unacked_segs = 0;
        self.receivers[f].delack_gen += 1;
        let pkt = Packet {
            flow: f as u32,
            kind: PktKind::Ack { cum, more_holes },
            wire: self.cfg.header_overhead,
            hop: 0,
            reverse: true,
        };
        self.transmit(pkt);
    }

    fn receiver_on_syn(&mut self, f: usize) {
        // (re)send SYNACK; duplicate SYNs are answered idempotently
        let pkt = Packet {
            flow: f as u32,
            kind: PktKind::SynAck,
            wire: self.cfg.header_overhead,
            hop: 0,
            reverse: true,
        };
        self.transmit(pkt);
    }

    fn receiver_on_data(&mut self, f: usize, seq: u64) {
        let r = &mut self.receivers[f];
        if seq == r.rcv_next {
            r.rcv_next += 1;
            while r.ooo.remove(&r.rcv_next) {
                r.rcv_next += 1;
            }
            if !r.ooo.is_empty() || r.rcv_next >= r.total_segs {
                // still holes behind us, or transfer finished: ack now
                self.send_ack(f);
            } else {
                r.unacked_segs += 1;
                if r.unacked_segs >= self.cfg.delack {
                    self.send_ack(f);
                } else {
                    // delayed-ACK timer (40 ms, Linux-style)
                    r.delack_gen += 1;
                    let gen = r.delack_gen;
                    self.push(self.now + 0.04, Ev::DelAck { flow: f as u32, gen });
                }
            }
        } else if seq > r.rcv_next {
            r.ooo.insert(seq);
            self.send_ack(f); // duplicate ACK signalling the hole
        } else {
            self.send_ack(f); // stale segment: re-ack
        }
    }

    fn on_delack(&mut self, f: usize, gen: u64) {
        if self.receivers[f].delack_gen == gen && self.receivers[f].unacked_segs > 0 {
            self.send_ack(f);
        }
    }

    // ---- main loop ------------------------------------------------------

    fn run(mut self) -> RunReport {
        for (i, fl) in self.flows.iter().enumerate() {
            self.heap.push(HeapEntry {
                t: fl.start,
                seq: i as u64,
                ev: Ev::FlowStart(i as u32),
            });
        }
        self.seq = self.flows.len() as u64;

        let mut events: u64 = 0;
        while self.remaining_flows > 0 {
            let Some(entry) = self.heap.pop() else { break };
            events += 1;
            if events > self.max_events {
                break;
            }
            self.now = entry.t;
            match entry.ev {
                Ev::FlowStart(f) => {
                    let f = f as usize;
                    if self.fwd[f].is_empty() {
                        // same-host transfer: instantaneous at this level
                        self.senders[f].phase = SenderPhase::Established;
                        self.complete(f);
                    } else {
                        self.senders[f].phase = SenderPhase::Handshake;
                        self.send_syn(f);
                    }
                }
                Ev::TxDone(ch) => self.on_txdone(ch),
                Ev::Arrive(pkt) => self.deliver(pkt),
                Ev::Rto { flow, gen } => self.on_rto(flow as usize, gen),
                Ev::DelAck { flow, gen } => self.on_delack(flow as usize, gen),
            }
        }

        let flows = (0..self.flows.len())
            .map(|f| FlowResult {
                completion: self.senders[f].completion,
                retransmits: self.senders[f].retransmits,
                drops: self.flow_drops[f],
            })
            .collect();
        let end_time = self.now;
        let channels = self
            .channels
            .iter()
            .map(|c| ChannelStats {
                carried_bytes: c.carried_bytes,
                drops: c.drops,
                utilization: if end_time > 0.0 { c.busy_time / end_time } else { 0.0 },
            })
            .collect();
        RunReport { flows, channels, end_time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkBuilder;

    /// h1 — sw — h2 at 1 Gbit/s, 20 µs per hop, 512 KB queues.
    fn gige_line(queue: f64) -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, sw, 1.25e8, 2e-5, queue);
        b.duplex_link(sw, h2, 1.25e8, 2e-5, queue);
        let n = b.build();
        let h1 = n.node_by_name("h1").unwrap();
        let h2 = n.node_by_name("h2").unwrap();
        (n, h1, h2)
    }

    #[test]
    fn single_flow_reaches_line_rate() {
        let (n, h1, h2) = gige_line(5e5);
        let sim = PacketSim::new(&n, TcpConfig::default());
        let bytes = 2e7;
        let res = sim.run(&[FlowSpec { src: h1, dst: h2, bytes, start: 0.0 }]);
        let d = res[0].duration(&FlowSpec { src: h1, dst: h2, bytes, start: 0.0 }).unwrap();
        // ideal goodput ≈ 0.949 · 125 MB/s ≈ 118.6 MB/s → ≈ 0.169 s;
        // allow handshake + slow start + delack slack
        let ideal = bytes / (1.25e8 * 1448.0 / 1526.0);
        assert!(d > ideal, "cannot beat line rate: {d} vs {ideal}");
        // a 20 MB transfer still amortizes the slow-start overshoot badly;
        // the one-time recovery episode costs ~50-80 ms here
        assert!(d < ideal * 1.6, "too slow: {d} vs {ideal}");
        // NB: retransmits are expected — with 4 MB windows and ~500 KB of
        // buffering, slow start overshoots the queue exactly like the real
        // stack does.
    }

    #[test]
    fn small_transfer_dominated_by_rtt_rounds() {
        let (n, h1, h2) = gige_line(5e5);
        let sim = PacketSim::new(&n, TcpConfig::default());
        let bytes = 1e5; // 70 segments: ~4-5 slow-start rounds
        let spec = FlowSpec { src: h1, dst: h2, bytes, start: 0.0 };
        let d = sim.run(&[spec])[0].duration(&spec).unwrap();
        // On a LAN the bandwidth-delay product is tiny, so slow start only
        // costs a handful of RTTs before the pipe is continuously full —
        // the *measured* small-transfer penalty in the paper comes from
        // host overheads (see testbed), not protocol rounds.
        let serialization = bytes / (1.25e8 * 0.949);
        assert!(
            d > serialization * 1.25,
            "handshake + slow start must show up: {d} vs raw {serialization}"
        );
        assert!(d < 0.05, "but still well under 50 ms on a LAN: {d}");
    }

    #[test]
    fn two_flows_share_the_bottleneck() {
        // both senders behind the same switch egress to h2
        let mut b = NetworkBuilder::new();
        let s1 = b.add_host("s1");
        let s2 = b.add_host("s2");
        let sw = b.add_switch("sw");
        let d = b.add_host("d");
        b.duplex_link(s1, sw, 1.25e8, 2e-5, 5e5);
        b.duplex_link(s2, sw, 1.25e8, 2e-5, 5e5);
        b.duplex_link(sw, d, 1.25e8, 2e-5, 5e5);
        let n = b.build();
        let (s1, s2, d) = (
            n.node_by_name("s1").unwrap(),
            n.node_by_name("s2").unwrap(),
            n.node_by_name("d").unwrap(),
        );
        let sim = PacketSim::new(&n, TcpConfig::default());
        let bytes = 1.5e7;
        let specs = [
            FlowSpec { src: s1, dst: d, bytes, start: 0.0 },
            FlowSpec { src: s2, dst: d, bytes, start: 0.0 },
        ];
        let res = sim.run(&specs);
        let d0 = res[0].duration(&specs[0]).unwrap();
        let d1 = res[1].duration(&specs[1]).unwrap();
        let solo = bytes / (1.25e8 * 0.949);
        // contended: both roughly 2× the solo time, within TCP slack
        for dd in [d0, d1] {
            assert!(dd > 1.6 * solo, "sharing must slow flows: {dd} vs {solo}");
            assert!(dd < 4.0 * solo, "but not pathologically: {dd} vs {solo}");
        }
        // fairness: completions within 40% of each other
        assert!((d0 - d1).abs() / d0.max(d1) < 0.4, "{d0} vs {d1}");
    }

    #[test]
    fn tiny_queue_causes_drops_but_completes() {
        let (n, h1, h2) = gige_line(2e4); // ~13 packets of buffer
        let sim = PacketSim::new(&n, TcpConfig::default());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 5e6, start: 0.0 };
        let res = sim.run(&[spec]);
        assert!(res[0].completion.is_some(), "must finish despite drops");
    }

    #[test]
    fn contention_forces_losses() {
        // 4 senders into one gigabit egress with small buffers: drop-tail
        // must discard and TCP must retransmit, yet everyone completes.
        let mut b = NetworkBuilder::new();
        let sw = b.add_switch("sw");
        let dst = b.add_host("d");
        b.duplex_link(sw, dst, 1.25e8, 2e-5, 6e4);
        let mut srcs = Vec::new();
        for i in 0..4 {
            let s = b.add_host(&format!("s{i}"));
            b.duplex_link(s, sw, 1.25e8, 2e-5, 6e4);
            srcs.push(s);
        }
        let n = b.build();
        let sim = PacketSim::new(&n, TcpConfig::default());
        let specs: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec {
                src: n.node_by_name(&format!("s{i}")).unwrap(),
                dst: n.node_by_name("d").unwrap(),
                bytes: 8e6,
                start: 0.0,
            })
            .collect();
        let res = sim.run(&specs);
        let total_rtx: u64 = res.iter().map(|r| r.retransmits).sum();
        assert!(total_rtx > 0, "4:1 incast into 60 KB buffers must lose packets");
        for r in &res {
            assert!(r.completion.is_some());
        }
    }

    #[test]
    fn reno_and_cubic_both_complete() {
        let (n, h1, h2) = gige_line(2e5);
        for cc in [crate::tcp::CongestionControl::Reno, crate::tcp::CongestionControl::Cubic] {
            let cfg = TcpConfig { cc, ..TcpConfig::default() };
            let sim = PacketSim::new(&n, cfg);
            let spec = FlowSpec { src: h1, dst: h2, bytes: 1e7, start: 0.0 };
            let res = sim.run(&[spec]);
            assert!(res[0].completion.is_some(), "{cc:?} failed");
        }
    }

    #[test]
    fn zero_byte_flow_costs_a_handshake() {
        let (n, h1, h2) = gige_line(5e5);
        let sim = PacketSim::new(&n, TcpConfig::default());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 0.0, start: 0.0 };
        let res = sim.run(&[spec]);
        let d = res[0].duration(&spec).unwrap();
        // ≥ 1 RTT (SYN + SYNACK), ≤ a few RTTs
        assert!(d >= 8e-5, "handshake takes at least one RTT: {d}");
        assert!(d < 1e-3);
    }

    #[test]
    fn same_host_flow_is_instant() {
        let (n, h1, _) = gige_line(5e5);
        let sim = PacketSim::new(&n, TcpConfig::default());
        let spec = FlowSpec { src: h1, dst: h1, bytes: 1e6, start: 3.0 };
        let res = sim.run(&[spec]);
        assert_eq!(res[0].completion, Some(3.0));
    }

    #[test]
    fn deterministic_repeat() {
        let (n, h1, h2) = gige_line(1e5);
        let run = || {
            let sim = PacketSim::new(&n, TcpConfig::default());
            let specs = [
                FlowSpec { src: h1, dst: h2, bytes: 3e6, start: 0.0 },
                FlowSpec { src: h2, dst: h1, bytes: 2e6, start: 0.001 },
            ];
            sim.run(&specs).iter().map(|r| r.completion.unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn staggered_flow_sees_leftover_bandwidth() {
        let (n, h1, h2) = gige_line(5e5);
        let sim = PacketSim::new(&n, TcpConfig::default());
        let a = FlowSpec { src: h1, dst: h2, bytes: 4e6, start: 0.0 };
        let b_ = FlowSpec { src: h1, dst: h2, bytes: 4e6, start: 2.0 };
        let res = sim.run(&[a, b_]);
        let da = res[0].duration(&a).unwrap();
        let db = res[1].duration(&b_).unwrap();
        // a finishes well before b starts; both run uncontended
        assert!(res[0].completion.unwrap() < 2.0);
        assert!((da - db).abs() < 0.3 * da.max(db), "{da} vs {db}");
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::net::NetworkBuilder;
    use crate::tcp::TcpConfig;

    #[test]
    fn channel_stats_account_for_the_payload() {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, h2, 1.25e8, 2e-5, 5e5);
        let n = b.build();
        let (h1, h2) = (n.node_by_name("h1").unwrap(), n.node_by_name("h2").unwrap());
        let sim = PacketSim::new(&n, TcpConfig::default());
        let bytes = 5e6;
        let report = sim.run_with_stats(&[FlowSpec { src: h1, dst: h2, bytes, start: 0.0 }]);
        assert!(report.flows[0].completion.is_some());
        // channel 0 is h1→h2 (data direction): carried ≥ payload + headers
        let fwd = &report.channels[0];
        let segs = (bytes / 1448.0).ceil();
        assert!(
            fwd.carried_bytes >= bytes + segs * 78.0,
            "forward carried {} < payload+headers",
            fwd.carried_bytes
        );
        // reverse channel carries only ACKs: far less
        let rev = &report.channels[1];
        assert!(rev.carried_bytes < fwd.carried_bytes / 10.0);
        // utilization sane and the data direction dominates
        assert!(fwd.utilization > 0.5 && fwd.utilization <= 1.0, "{}", fwd.utilization);
        assert!(rev.utilization < fwd.utilization);
        assert!(report.end_time > 0.0);
    }

    #[test]
    fn drops_show_up_in_channel_stats() {
        let mut b = NetworkBuilder::new();
        let sw = b.add_switch("sw");
        let d = b.add_host("d");
        b.duplex_link(sw, d, 1.25e8, 2e-5, 4e4);
        let mut flows = Vec::new();
        for i in 0..4 {
            let s = b.add_host(&format!("s{i}"));
            b.duplex_link(s, sw, 1.25e8, 2e-5, 4e4);
            flows.push(s);
        }
        let n = b.build();
        let sim = PacketSim::new(&n, TcpConfig::default());
        let specs: Vec<FlowSpec> = flows
            .iter()
            .map(|s| FlowSpec {
                src: n.node_by_name(n.node_name(*s)).unwrap(),
                dst: n.node_by_name("d").unwrap(),
                bytes: 6e6,
                start: 0.0,
            })
            .collect();
        let report = sim.run_with_stats(&specs);
        let total_channel_drops: u64 = report.channels.iter().map(|c| c.drops).sum();
        let total_flow_drops: u64 = report.flows.iter().map(|f| f.drops).sum();
        assert!(total_channel_drops > 0, "incast must drop");
        assert_eq!(total_channel_drops, total_flow_drops, "accounting must agree");
    }
}
