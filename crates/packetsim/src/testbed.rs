//! Measurement conditions: what separates "a TCP transfer" from "a number
//! recorded by an experiment script".
//!
//! The paper's measured completion times come from iperf processes started
//! remotely on Grid'5000 nodes. For small transfers these measurements are
//! dominated by costs that have nothing to do with the network: process
//! startup, connection setup scheduling, and the age of the node. The
//! figures make this visible — on the 2004-era sagittaire nodes, measured
//! 100 KB "transfers" take ~1 s while the model predicts ~4 ms (error −8),
//! while the 2010-era graphene nodes show no such floor.
//!
//! [`Testbed`] reproduces those conditions on top of the simulation
//! engines: a per-host application startup overhead (with jitter) added to
//! every measured duration, and the fluid engine's seeded throughput noise
//! standing in for residual cross-traffic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{FlowSpec, PacketSim};
use crate::fluid::{FluidParams, FluidSim};
use crate::net::{Network, NodeId};
use crate::tcp::TcpConfig;

/// Testbed-level configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// TCP endpoint parameters (the paper's tuned squeeze stack).
    pub tcp: TcpConfig,
    /// Fluid-engine parameters.
    pub fluid: FluidParams,
    /// Relative jitter applied to per-host overheads (uniform
    /// `±overhead_jitter`, e.g. `0.15` for ±15 %).
    pub overhead_jitter: f64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            tcp: TcpConfig::default(),
            fluid: FluidParams::default(),
            overhead_jitter: 0.15,
        }
    }
}

/// A simulated experimental testbed: a true network plus measurement
/// overheads.
pub struct Testbed<'n> {
    net: &'n Network,
    cfg: TestbedConfig,
    /// Application startup overhead per node, seconds.
    overheads: Vec<f64>,
}

/// One measured transfer.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Measured completion duration in seconds (network time + overheads).
    pub duration: f64,
    /// Whether the transfer saw a saturated resource.
    pub contended: bool,
}

impl<'n> Testbed<'n> {
    /// Wraps `net` with default (zero) overheads.
    pub fn new(net: &'n Network, cfg: TestbedConfig) -> Self {
        let overheads = vec![0.0; net.node_count()];
        Testbed { net, cfg, overheads }
    }

    /// Sets the application startup overhead of one node.
    pub fn set_overhead(&mut self, node: NodeId, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite());
        self.overheads[node.index()] = seconds;
    }

    /// The configured overhead of a node.
    pub fn overhead(&self, node: NodeId) -> f64 {
        self.overheads[node.index()]
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Runs the flows on the fluid engine and returns *measured* durations:
    /// engine duration plus the source host's jittered startup overhead.
    /// `seed` controls both throughput noise and overhead jitter, so a
    /// repetition index maps directly to a seed.
    pub fn measure(&self, flows: &[FlowSpec], seed: u64) -> Vec<Measurement> {
        let engine = FluidSim::new(self.net, self.cfg.tcp, self.cfg.fluid);
        let results = engine.run(flows, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        flows
            .iter()
            .zip(results)
            .map(|(f, r)| {
                let base = self.overheads[f.src.index()];
                let jitter = if self.cfg.overhead_jitter > 0.0 && base > 0.0 {
                    1.0 + rng.gen_range(-self.cfg.overhead_jitter..self.cfg.overhead_jitter)
                } else {
                    1.0
                };
                Measurement {
                    duration: r.duration(f) + base * jitter,
                    contended: r.was_contended,
                }
            })
            .collect()
    }

    /// Same measurement through the per-segment engine (no throughput
    /// noise; used for validation at small scales).
    pub fn measure_packet_level(&self, flows: &[FlowSpec], seed: u64) -> Vec<Measurement> {
        let engine = PacketSim::new(self.net, self.cfg.tcp);
        let results = engine.run(flows);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        flows
            .iter()
            .zip(results)
            .map(|(f, r)| {
                let base = self.overheads[f.src.index()];
                let jitter = if self.cfg.overhead_jitter > 0.0 && base > 0.0 {
                    1.0 + rng.gen_range(-self.cfg.overhead_jitter..self.cfg.overhead_jitter)
                } else {
                    1.0
                };
                Measurement {
                    duration: r
                        .duration(f)
                        .expect("packet-level run exhausted its event budget")
                        + base * jitter,
                    contended: r.retransmits > 0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkBuilder;

    fn line() -> Network {
        let mut b = NetworkBuilder::new();
        let h1 = b.add_host("h1");
        let sw = b.add_switch("sw");
        let h2 = b.add_host("h2");
        b.duplex_link(h1, sw, 1.25e8, 2e-5, 5e5);
        b.duplex_link(sw, h2, 1.25e8, 2e-5, 5e5);
        b.build()
    }

    #[test]
    fn overhead_dominates_small_transfers() {
        let n = line();
        let (h1, h2) = (n.node_by_name("h1").unwrap(), n.node_by_name("h2").unwrap());
        let mut tb = Testbed::new(&n, TestbedConfig::default());
        tb.set_overhead(h1, 0.9); // sagittaire-style old node
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e5, start: 0.0 };
        let m = tb.measure(&[spec], 1);
        assert!(m[0].duration > 0.7, "overhead must dominate: {}", m[0].duration);
        // the same transfer without overhead is orders of magnitude faster
        let tb2 = Testbed::new(&n, TestbedConfig::default());
        let m2 = tb2.measure(&[spec], 1);
        assert!(m2[0].duration < 0.01, "{}", m2[0].duration);
    }

    #[test]
    fn overhead_negligible_for_large_transfers() {
        let n = line();
        let (h1, h2) = (n.node_by_name("h1").unwrap(), n.node_by_name("h2").unwrap());
        let mut tb = Testbed::new(&n, TestbedConfig::default());
        tb.set_overhead(h1, 0.9);
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e10, start: 0.0 };
        let with = tb.measure(&[spec], 1)[0].duration;
        let tb2 = Testbed::new(&n, TestbedConfig::default());
        let without = tb2.measure(&[spec], 1)[0].duration;
        assert!((with - without) / without < 0.02, "{with} vs {without}");
    }

    #[test]
    fn jitter_varies_with_seed_but_is_reproducible() {
        let n = line();
        let (h1, h2) = (n.node_by_name("h1").unwrap(), n.node_by_name("h2").unwrap());
        let mut tb = Testbed::new(&n, TestbedConfig::default());
        tb.set_overhead(h1, 0.5);
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e6, start: 0.0 };
        let a = tb.measure(&[spec], 1)[0].duration;
        let b = tb.measure(&[spec], 1)[0].duration;
        let c = tb.measure(&[spec], 2)[0].duration;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn packet_level_measurement_works() {
        let n = line();
        let (h1, h2) = (n.node_by_name("h1").unwrap(), n.node_by_name("h2").unwrap());
        let tb = Testbed::new(&n, TestbedConfig::default());
        let spec = FlowSpec { src: h1, dst: h2, bytes: 1e6, start: 0.0 };
        let m = tb.measure_packet_level(&[spec], 1);
        assert!(m[0].duration > 0.0 && m[0].duration < 0.1);
    }
}
