//! TCP endpoint configuration and congestion-control window math.
//!
//! Mirrors the stack the paper measured against: Linux 2.6.32 ("squeeze"),
//! CUBIC with HyStart disabled, 4 MiB maximum windows
//! (`net.core.{r,w}mem_max = 4194304`), MSS 1448 over gigabit Ethernet.
//! Reno is provided as well for comparison benches.

/// Congestion-control algorithm.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CongestionControl {
    /// Classic AIMD: +1 MSS per RTT, ×0.5 on loss.
    Reno,
    /// CUBIC (Ha et al.): window grows as `C·(t−K)³ + W_max`; β = 0.7.
    Cubic,
}

/// TCP endpoint parameters.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (payload per data packet).
    pub mss: f64,
    /// Per-packet wire overhead in bytes (Ethernet + IP + TCP headers,
    /// preamble, inter-frame gap): 1448-byte segments occupy ≈ 1526 bytes
    /// of line time.
    pub header_overhead: f64,
    /// Initial congestion window in segments (RFC 3390 / Linux 2.6.32 ≈ 3).
    pub init_cwnd: f64,
    /// Receive/congestion window cap in bytes (the paper's 4 MiB).
    pub max_window_bytes: f64,
    /// Congestion control algorithm.
    pub cc: CongestionControl,
    /// Minimum retransmission timeout in seconds (Linux: 200 ms).
    pub min_rto: f64,
    /// Initial RTO before any RTT sample, in seconds.
    pub initial_rto: f64,
    /// ACK every `delack` in-order segments (delayed ACK).
    pub delack: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448.0,
            header_overhead: 78.0,
            init_cwnd: 3.0,
            max_window_bytes: 4_194_304.0,
            cc: CongestionControl::Cubic,
            min_rto: 0.2,
            initial_rto: 1.0,
            delack: 2,
        }
    }
}

impl TcpConfig {
    /// Window cap in segments.
    pub fn max_window_segs(&self) -> f64 {
        self.max_window_bytes / self.mss
    }

    /// Goodput fraction of the line rate once headers are paid:
    /// `mss / (mss + overhead)` ≈ 0.949 for the defaults.
    pub fn wire_efficiency(&self) -> f64 {
        self.mss / (self.mss + self.header_overhead)
    }
}

/// CUBIC parameters (RFC 8312 defaults).
pub const CUBIC_C: f64 = 0.4;
/// Multiplicative decrease factor: window shrinks to `β·W_max` on loss.
pub const CUBIC_BETA: f64 = 0.7;

/// Per-flow congestion-control state shared by Reno and CUBIC.
#[derive(Clone, Debug)]
pub struct CcState {
    /// Congestion window in segments.
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    /// CUBIC: window before the last reduction.
    pub w_max: f64,
    /// CUBIC: time of the last reduction (None before any loss).
    pub epoch_start: Option<f64>,
    algo: CongestionControl,
}

impl CcState {
    /// Fresh state: slow start towards an effectively unlimited threshold.
    pub fn new(cfg: &TcpConfig) -> Self {
        CcState {
            cwnd: cfg.init_cwnd,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            algo: cfg.cc,
        }
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Window growth on a cumulative ACK covering `acked` new segments at
    /// time `now` with smoothed RTT `srtt`. `cap` bounds the window.
    pub fn on_ack(&mut self, acked: f64, now: f64, srtt: f64, cap: f64) {
        if self.in_slow_start() {
            self.cwnd = (self.cwnd + acked).min(cap);
            return;
        }
        match self.algo {
            CongestionControl::Reno => {
                // +1 MSS per RTT ⇒ +acked/cwnd per ACK.
                self.cwnd = (self.cwnd + acked / self.cwnd).min(cap);
            }
            CongestionControl::Cubic => {
                let epoch = *self.epoch_start.get_or_insert(now);
                let k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                let t = (now - epoch) + srtt;
                let target = CUBIC_C * (t - k).powi(3) + self.w_max;
                if target > self.cwnd {
                    // standard cubic pacing: close the gap gradually
                    self.cwnd = (self.cwnd + (target - self.cwnd) / self.cwnd).min(cap);
                } else {
                    // TCP-friendly floor: at least Reno-like growth
                    self.cwnd = (self.cwnd + 0.01 * acked / self.cwnd).min(cap);
                }
            }
        }
    }

    /// Multiplicative decrease on a fast-retransmit loss event at `now`.
    pub fn on_loss(&mut self, now: f64) {
        let beta = match self.algo {
            CongestionControl::Reno => 0.5,
            CongestionControl::Cubic => CUBIC_BETA,
        };
        self.w_max = self.cwnd;
        self.epoch_start = Some(now);
        self.ssthresh = (self.cwnd * beta).max(2.0);
        self.cwnd = self.ssthresh;
    }

    /// Collapse on retransmission timeout.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.w_max = self.cwnd;
        self.cwnd = 1.0;
        self.epoch_start = None;
    }
}

/// Jacobson/Karels RTT estimation driving the retransmission timeout.
#[derive(Clone, Copy, Debug)]
pub struct RttEstimator {
    /// Smoothed RTT (seconds); NaN until the first sample.
    pub srtt: f64,
    /// RTT variance estimate.
    pub rttvar: f64,
    /// Current RTO.
    pub rto: f64,
    min_rto: f64,
}

impl RttEstimator {
    /// Fresh estimator with the configured initial/minimum RTO.
    pub fn new(cfg: &TcpConfig) -> Self {
        RttEstimator {
            srtt: f64::NAN,
            rttvar: 0.0,
            rto: cfg.initial_rto,
            min_rto: cfg.min_rto,
        }
    }

    /// Feeds one RTT sample (from a segment transmitted exactly once).
    pub fn sample(&mut self, rtt: f64) {
        if self.srtt.is_nan() {
            self.srtt = rtt;
            self.rttvar = rtt / 2.0;
        } else {
            let err = rtt - self.srtt;
            self.srtt += 0.125 * err;
            self.rttvar += 0.25 * (err.abs() - self.rttvar);
        }
        self.rto = (self.srtt + 4.0 * self.rttvar).max(self.min_rto);
    }

    /// Exponential backoff after a timeout.
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2.0).min(60.0);
    }

    /// Forward progress: new data was cumulatively acknowledged, so any
    /// timeout backoff no longer applies (Linux restarts the timer from
    /// the estimated RTO on every ACK that advances `snd_una`).
    pub fn on_progress(&mut self) {
        if !self.srtt.is_nan() {
            self.rto = (self.srtt + 4.0 * self.rttvar).max(self.min_rto);
        }
    }

    /// The smoothed RTT, or a fallback before any sample.
    pub fn srtt_or(&self, fallback: f64) -> f64 {
        if self.srtt.is_nan() {
            fallback
        } else {
            self.srtt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = TcpConfig::default();
        assert_eq!(c.max_window_bytes, 4_194_304.0);
        assert_eq!(c.cc, CongestionControl::Cubic);
        assert_eq!(c.mss, 1448.0);
        assert!((c.wire_efficiency() - 1448.0 / 1526.0).abs() < 1e-12);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let cfg = TcpConfig::default();
        let mut cc = CcState::new(&cfg);
        assert!(cc.in_slow_start());
        let w0 = cc.cwnd;
        // acking a full window's worth doubles it
        cc.on_ack(w0, 0.01, 0.001, f64::INFINITY);
        assert!((cc.cwnd - 2.0 * w0).abs() < 1e-12);
    }

    #[test]
    fn loss_shrinks_window_by_beta() {
        let cfg = TcpConfig::default();
        let mut cc = CcState::new(&cfg);
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0; // out of slow start
        cc.on_loss(1.0);
        assert!((cc.cwnd - 70.0).abs() < 1e-9);
        assert_eq!(cc.w_max, 100.0);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn reno_loss_halves() {
        let cfg = TcpConfig { cc: CongestionControl::Reno, ..TcpConfig::default() };
        let mut cc = CcState::new(&cfg);
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0;
        cc.on_loss(1.0);
        assert!((cc.cwnd - 50.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let cfg = TcpConfig::default();
        let mut cc = CcState::new(&cfg);
        cc.cwnd = 64.0;
        cc.ssthresh = 32.0;
        cc.on_timeout();
        assert_eq!(cc.cwnd, 1.0);
        assert_eq!(cc.ssthresh, 32.0);
    }

    #[test]
    fn cubic_recovers_towards_wmax() {
        let cfg = TcpConfig::default();
        let mut cc = CcState::new(&cfg);
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0;
        cc.on_loss(0.0);
        let after_loss = cc.cwnd;
        // simulate repeated ACKs over several seconds
        let mut t = 0.0;
        for _ in 0..20_000 {
            t += 0.001;
            cc.on_ack(1.0, t, 0.001, f64::INFINITY);
        }
        assert!(cc.cwnd > after_loss, "cubic must grow after loss");
        assert!(cc.cwnd > 95.0, "cubic should approach w_max, got {}", cc.cwnd);
    }

    #[test]
    fn window_respects_cap() {
        let cfg = TcpConfig::default();
        let mut cc = CcState::new(&cfg);
        for _ in 0..100 {
            cc.on_ack(10.0, 0.0, 0.001, 42.0);
        }
        assert!(cc.cwnd <= 42.0);
    }

    #[test]
    fn rtt_estimator_converges() {
        let cfg = TcpConfig::default();
        let mut est = RttEstimator::new(&cfg);
        assert_eq!(est.rto, 1.0);
        for _ in 0..100 {
            est.sample(0.010);
        }
        assert!((est.srtt - 0.010).abs() < 1e-6);
        // steady RTT: rto floors at min_rto
        assert_eq!(est.rto, 0.2);
    }

    #[test]
    fn rto_backoff_doubles_and_saturates() {
        let cfg = TcpConfig::default();
        let mut est = RttEstimator::new(&cfg);
        for _ in 0..10 {
            est.backoff();
        }
        assert!(est.rto <= 60.0);
    }
}
