//! Cross-validation: the fluid engine must agree with the per-segment
//! engine on scenarios small enough to run both.
//!
//! This is the evidence that substituting the fluid engine for the packet
//! engine in the paper-scale experiments does not change the conclusions:
//! on shared-bottleneck scenarios with flows from 100 KB to 20 MB, the two
//! engines' completion times stay within a modest factor of each other,
//! far tighter than the ×1.4 (0.5 in log2) resolution the paper's error
//! metric cares about.

use packetsim::net::{Network, NetworkBuilder, NodeId};
use packetsim::{FlowSpec, FluidSim, PacketSim, TcpConfig};

fn star(n_hosts: usize, rate: f64, delay: f64) -> (Network, Vec<NodeId>) {
    let mut b = NetworkBuilder::new();
    let sw = b.add_switch("sw");
    let mut hosts = Vec::new();
    for i in 0..n_hosts {
        let h = b.add_host(&format!("h{i}"));
        b.duplex_link(h, sw, rate, delay, 5e5);
        hosts.push(h);
    }
    let net = b.build();
    let hosts = (0..n_hosts)
        .map(|i| net.node_by_name(&format!("h{i}")).unwrap())
        .collect();
    (net, hosts)
}

/// Runs the same scenario through both engines and returns the per-flow
/// duration ratios fluid/packet.
fn ratios(net: &Network, flows: &[FlowSpec]) -> Vec<f64> {
    let fluid = FluidSim::new(
        net,
        TcpConfig::default(),
        packetsim::fluid::FluidParams { noise_sigma: 0.0, ..Default::default() },
    );
    let fl = fluid.run(flows, 1);
    let packet = PacketSim::new(net, TcpConfig::default());
    let pk = packet.run(flows);
    flows
        .iter()
        .enumerate()
        .map(|(i, s)| fl[i].duration(s) / pk[i].duration(s).expect("packet flow completed"))
        .collect()
}

#[test]
fn single_flow_sizes_sweep() {
    let (net, hosts) = star(2, 1.25e8, 2e-5);
    for bytes in [1e5, 1e6, 1e7, 2e7] {
        let flows = [FlowSpec { src: hosts[0], dst: hosts[1], bytes, start: 0.0 }];
        for r in ratios(&net, &flows) {
            assert!(
                (0.55..=1.8).contains(&r),
                "fluid/packet ratio {r} out of range at {bytes} bytes"
            );
        }
    }
}

#[test]
fn two_flows_one_bottleneck() {
    let (net, hosts) = star(3, 1.25e8, 2e-5);
    let flows = [
        FlowSpec { src: hosts[0], dst: hosts[2], bytes: 1e7, start: 0.0 },
        FlowSpec { src: hosts[1], dst: hosts[2], bytes: 1e7, start: 0.0 },
    ];
    for r in ratios(&net, &flows) {
        assert!((0.5..=2.0).contains(&r), "ratio {r} out of range");
    }
}

#[test]
fn four_to_one_incast() {
    let (net, hosts) = star(5, 1.25e8, 2e-5);
    let flows: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec { src: hosts[i], dst: hosts[4], bytes: 6e6, start: 0.0 })
        .collect();
    for r in ratios(&net, &flows) {
        // incast punishes the packet engine more (burst losses); fluid
        // stays optimistic — keep them within a factor ~2.2
        assert!((0.4..=2.2).contains(&r), "ratio {r} out of range");
    }
}

#[test]
fn staggered_arrivals() {
    let (net, hosts) = star(3, 1.25e8, 2e-5);
    let flows = [
        FlowSpec { src: hosts[0], dst: hosts[2], bytes: 1.2e7, start: 0.0 },
        FlowSpec { src: hosts[1], dst: hosts[2], bytes: 6e6, start: 0.04 },
    ];
    for r in ratios(&net, &flows) {
        assert!((0.5..=2.0).contains(&r), "ratio {r} out of range");
    }
}

#[test]
fn wan_latency_window_cap() {
    // 25 ms path: both engines must show the 4 MB window cap.
    let mut b = NetworkBuilder::new();
    let h1 = b.add_host("h1");
    let h2 = b.add_host("h2");
    b.duplex_link(h1, h2, 1.25e9, 2.5e-2, 1e7);
    let net = b.build();
    let (h1, h2) = (net.node_by_name("h1").unwrap(), net.node_by_name("h2").unwrap());
    let flows = [FlowSpec { src: h1, dst: h2, bytes: 2e8, start: 0.0 }];
    let r = ratios(&net, &flows);
    assert!(
        (0.6..=1.7).contains(&r[0]),
        "window-capped WAN flow: ratio {} out of range",
        r[0]
    );
}
