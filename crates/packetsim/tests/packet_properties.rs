//! Property tests of the packet engine's physical invariants on random
//! star topologies and workloads.

use packetsim::net::{Network, NetworkBuilder, NodeId};
use packetsim::{FlowSpec, FluidSim, PacketSim, TcpConfig};
use proptest::prelude::*;

fn star(n_hosts: usize, rate: f64, delay: f64, queue: f64) -> (Network, Vec<NodeId>) {
    let mut b = NetworkBuilder::new();
    let sw = b.add_switch("sw");
    for i in 0..n_hosts {
        let h = b.add_host(&format!("h{i}"));
        b.duplex_link(h, sw, rate, delay, queue);
    }
    let net = b.build();
    let hosts = (0..n_hosts)
        .map(|i| net.node_by_name(&format!("h{i}")).unwrap())
        .collect();
    (net, hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every flow completes, never beats the line rate, and the engine is
    /// deterministic.
    #[test]
    fn flows_complete_within_physics(
        n_flows in 1usize..5,
        bytes in 1e5f64..5e6,
        rate in 5e7f64..2.5e8,
        delay in 1e-6f64..1e-4,
    ) {
        let (net, hosts) = star(6, rate, delay, 5e5);
        let cfg = TcpConfig::default();
        let sim = PacketSim::new(&net, cfg);
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|i| FlowSpec {
                src: hosts[i % 3],
                dst: hosts[3 + i % 3],
                bytes,
                start: 0.0,
            })
            .collect();
        let res = sim.run(&flows);
        for (r, f) in res.iter().zip(&flows) {
            let d = r.duration(f).expect("completed");
            // wire-rate lower bound: payload + headers over the line rate
            let segs = (bytes / cfg.mss).ceil();
            let wire = bytes + segs * cfg.header_overhead;
            prop_assert!(
                d > wire / rate,
                "{d}s beats the line rate ({}s)",
                wire / rate
            );
            prop_assert!(d < 60.0, "{d}s is unreasonably slow");
        }
        // determinism
        let again = sim.run(&flows);
        for (a, b) in res.iter().zip(&again) {
            prop_assert_eq!(a.completion, b.completion);
        }
    }

    /// More payload never finishes sooner — up to tail-loss RTO slack:
    /// a transfer whose *last* slow-start burst is tail-dropped stalls a
    /// full RTO (≥ 200 ms) because nothing behind the loss can generate
    /// duplicate ACKs, while a slightly larger transfer recovers via fast
    /// retransmit. Period-accurate for the paper's Linux 2.6.32 (tail
    /// loss probes only landed in Linux 3.10).
    #[test]
    fn monotone_in_size_up_to_tail_rto(
        small in 1e5f64..1e6,
        factor in 1.5f64..8.0,
    ) {
        let (net, hosts) = star(2, 1.25e8, 2e-5, 5e5);
        let sim = PacketSim::new(&net, TcpConfig::default());
        let run = |bytes: f64| {
            let f = FlowSpec { src: hosts[0], dst: hosts[1], bytes, start: 0.0 };
            sim.run(&[f])[0].duration(&f).unwrap()
        };
        let d_small = run(small);
        let d_big = run(small * factor);
        prop_assert!(
            d_big > d_small - 0.45,
            "{d_big} vs {d_small}: exceeds two tail-RTO episodes"
        );
    }

    /// The fluid engine tracks the packet engine within a factor 2 on
    /// random single-bottleneck scenarios.
    #[test]
    fn fluid_tracks_packet(
        n_flows in 1usize..4,
        bytes in 2e5f64..4e6,
    ) {
        let (net, hosts) = star(5, 1.25e8, 2e-5, 5e5);
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|i| FlowSpec { src: hosts[i], dst: hosts[4], bytes, start: 0.0 })
            .collect();
        let packet = PacketSim::new(&net, TcpConfig::default()).run(&flows);
        let fluid = FluidSim::new(
            &net,
            TcpConfig::default(),
            packetsim::fluid::FluidParams { noise_sigma: 0.0, ..Default::default() },
        )
        .run(&flows, 1);
        for ((p, fl), f) in packet.iter().zip(&fluid).zip(&flows) {
            let dp = p.duration(f).unwrap();
            let df = fl.duration(f);
            let ratio = df / dp;
            // incast tail losses can cost the packet engine whole RTO
            // episodes (min 200 ms) that the fluid model does not
            // represent — allow a couple of them as absolute slack
            let rto_slack = (dp - df).abs() < 0.62;
            prop_assert!(
                (0.4..=2.2).contains(&ratio) || rto_slack,
                "fluid {df} vs packet {dp} (ratio {ratio})"
            );
        }
    }

    /// Queues bound memory: tiny buffers still deliver everything
    /// (retransmissions recover every loss).
    #[test]
    fn lossy_paths_still_deliver(
        queue in 1.6e4f64..6e4,
        bytes in 1e6f64..4e6,
    ) {
        let (net, hosts) = star(3, 1.25e8, 2e-5, queue);
        let sim = PacketSim::new(&net, TcpConfig::default());
        let flows = [
            FlowSpec { src: hosts[0], dst: hosts[2], bytes, start: 0.0 },
            FlowSpec { src: hosts[1], dst: hosts[2], bytes, start: 0.0 },
        ];
        let res = sim.run(&flows);
        for r in &res {
            prop_assert!(r.completion.is_some(), "flow starved: {r:?}");
        }
    }
}
