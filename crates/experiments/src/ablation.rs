//! Design-choice ablations the paper discusses qualitatively, quantified.
//!
//! * **Platform flavor** (figF): §V-A tested two generated platforms and
//!   kept the detailed one — "we have found that all predictions based on
//!   g5k_test are better". This ablation reruns representative figures
//!   against both and reports the large-size error medians side by side.
//! * **Latency calibration** (figC): §VI proposes replacing the two
//!   hard-coded latency values with SmokePing measurements through the
//!   metrology service. This ablation builds the calibrated platform
//!   (`pilgrim_core::calibration`) and shows what it buys at small
//!   transfer sizes, where the latency term dominates predictions.

use pilgrim_core::calibration::{
    calibrate, packetsim_probe::ProbeSource, seed_probes_from_network,
};
use pilgrim_core::{Metrology, Pnfs, TransferRequest};
use simflow::NetworkConfig;

use crate::figures::Lab;
use crate::stats::{log2_error, median};
use crate::workload::{draw_pairs, sizes, Topology, ACCURACY_THRESHOLD};

/// One row of the flavor ablation.
#[derive(Clone, Debug)]
pub struct FlavorPoint {
    /// Figure id the workload comes from.
    pub figure: &'static str,
    /// Median |error| over large sizes with `g5k_test`.
    pub g5k_test: f64,
    /// Median |error| over large sizes with `g5k_cabinets`.
    pub g5k_cabinets: f64,
}

/// Reruns the large-size points of representative figures against both
/// platform flavors.
pub fn run_flavor_ablation(lab: &Lab, reps: usize, base_seed: u64) -> Vec<FlavorPoint> {
    let configs: [(&'static str, Topology, usize, usize); 4] = [
        ("fig4", Topology::Cluster("sagittaire".into()), 10, 10),
        ("fig5", Topology::Cluster("sagittaire".into()), 30, 30),
        ("fig8", Topology::Cluster("graphene".into()), 30, 30),
        ("fig10", Topology::GridMulti, 10, 30),
    ];
    let large_sizes: Vec<f64> =
        sizes().into_iter().filter(|s| *s > ACCURACY_THRESHOLD).collect();

    configs
        .into_iter()
        .map(|(figure, topology, n_src, n_dst)| {
            let mut test_errs = Vec::new();
            let mut cab_errs = Vec::new();
            for (si, &size) in large_sizes.iter().enumerate() {
                for rep in 0..reps {
                    let seed = base_seed
                        ^ (si as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (rep as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    let pairs = draw_pairs(&lab.api, &topology, n_src, n_dst, seed);
                    let measured = lab.measure(&pairs, size, seed);
                    let test = lab.predict(&pairs, size, "g5k_test");
                    let cab = lab.predict(&pairs, size, "g5k_cabinets");
                    for ((m, t), c) in measured.iter().zip(&test).zip(&cab) {
                        test_errs.push(log2_error(*t, *m).abs());
                        cab_errs.push(log2_error(*c, *m).abs());
                    }
                }
            }
            FlavorPoint {
                figure,
                g5k_test: median(&test_errs).expect("samples"),
                g5k_cabinets: median(&cab_errs).expect("samples"),
            }
        })
        .collect()
}

/// ASCII rendering of the flavor ablation.
pub fn render_flavor_ablation(points: &[FlavorPoint]) -> String {
    let mut out = String::from(
        "figF — platform flavor ablation (median |log2 error|, sizes > 1.67e7)\n\
         the paper: \"all predictions based on g5k_test are better\"\n\n",
    );
    out.push_str(&format!(
        "{:>8} | {:>10} {:>13} | verdict\n",
        "figure", "g5k_test", "g5k_cabinets"
    ));
    out.push_str(&"-".repeat(52));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:>8} | {:>10.3} {:>13.3} | {}\n",
            p.figure,
            p.g5k_test,
            p.g5k_cabinets,
            if p.g5k_test <= p.g5k_cabinets { "g5k_test better" } else { "cabinets better" }
        ));
    }
    out
}

/// One row of the calibration ablation.
#[derive(Clone, Debug)]
pub struct CalibrationPoint {
    /// Transfer size, bytes.
    pub size: f64,
    /// Median error with the paper's hard-coded latencies.
    pub hardcoded: f64,
    /// Median error with metrology-calibrated latencies.
    pub calibrated: f64,
}

/// Builds a metrology-calibrated PNFS and compares small-size graphene
/// predictions against the hard-coded platform.
pub fn run_calibration_ablation(lab: &Lab, reps: usize, base_seed: u64) -> Vec<CalibrationPoint> {
    // SmokePing-style probes measured on the ground-truth network
    let metrology = Metrology::new();
    let probe = ProbeSource { network: &lab.tnet.network };
    seed_probes_from_network(&metrology, &lab.api, &probe, 60, 0.05, base_seed);
    let lat = calibrate(&lab.api, &metrology, 0, 60 * 60);

    let mut pnfs = Pnfs::new(NetworkConfig::default());
    pnfs.register_platform(
        "g5k_calibrated",
        g5k::to_simflow_calibrated(&lab.api, g5k::Flavor::G5kTest, &lat),
    );

    let small_sizes = [1e5, 3.59e5, 1.29e6, 4.64e6];
    small_sizes
        .iter()
        .map(|&size| {
            let mut hard_errs = Vec::new();
            let mut cal_errs = Vec::new();
            for rep in 0..reps {
                let seed = base_seed ^ (rep as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let pairs =
                    draw_pairs(&lab.api, &Topology::Cluster("graphene".into()), 10, 10, seed);
                let measured = lab.measure(&pairs, size, seed);
                let hard = lab.predict(&pairs, size, "g5k_test");
                let reqs: Vec<TransferRequest> = pairs
                    .iter()
                    .map(|p| TransferRequest { src: p.src.clone(), dst: p.dst.clone(), size })
                    .collect();
                let cal: Vec<f64> = pnfs
                    .predict("g5k_calibrated", &reqs)
                    .expect("prediction")
                    .iter()
                    .map(|p| p.duration)
                    .collect();
                for ((m, h), c) in measured.iter().zip(&hard).zip(&cal) {
                    hard_errs.push(log2_error(*h, *m));
                    cal_errs.push(log2_error(*c, *m));
                }
            }
            CalibrationPoint {
                size,
                hardcoded: median(&hard_errs).expect("samples"),
                calibrated: median(&cal_errs).expect("samples"),
            }
        })
        .collect()
}

/// ASCII rendering of the calibration ablation.
pub fn render_calibration_ablation(points: &[CalibrationPoint]) -> String {
    let mut out = String::from(
        "figC — latency-calibration ablation (graphene 10→10, small sizes)\n\
         §VI: \"use automatic link latency measurements instead of arbitrary values\"\n\
         median log2 error; closer to 0 is better\n\n",
    );
    out.push_str(&format!(
        "{:>10} | {:>10} {:>12}\n",
        "size(B)", "hardcoded", "calibrated"
    ));
    out.push_str(&"-".repeat(38));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:>10.2e} | {:>10.2} {:>12.2}\n",
            p.size, p.hardcoded, p.calibrated
        ));
    }
    out
}

/// One row of the TCP-model ablation.
#[derive(Clone, Debug)]
pub struct ModelPoint {
    /// Transfer size, bytes.
    pub size: f64,
    /// Median |error| with the LV08 recalibration (the paper's model).
    pub lv08: f64,
    /// Median |error| with the older CM02 constants.
    pub cm02: f64,
    /// Median |error| with no correction factors at all.
    pub ideal: f64,
}

/// Compares the three flow-model calibrations (ideal, CM02, LV08) on the
/// graphene 10×10 workload (no measurement-overhead floor) — the lineage
/// the paper cites (its refs \[13\] improved by \[14\]). On this testbed the two
/// calibrated models bracket the true wire efficiency and land close
/// together; the uncalibrated model is measurably worse.
pub fn run_model_ablation(lab: &Lab, reps: usize, base_seed: u64) -> Vec<ModelPoint> {
    let make = |cfg: NetworkConfig| {
        let mut p = Pnfs::new(cfg);
        p.register_platform("g5k_test", g5k::to_simflow(&lab.api, g5k::Flavor::G5kTest));
        p
    };
    let lv08 = make(NetworkConfig::default());
    let cm02 = make(NetworkConfig::cm02());
    let ideal = make(NetworkConfig::ideal());

    [5.99e7, 2.15e8, 7.74e8, 2.78e9]
        .iter()
        .map(|&size| {
            let mut errs = [Vec::new(), Vec::new(), Vec::new()];
            for rep in 0..reps {
                let seed = base_seed ^ (rep as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let pairs =
                    draw_pairs(&lab.api, &Topology::Cluster("graphene".into()), 10, 10, seed);
                let measured = lab.measure(&pairs, size, seed);
                let reqs: Vec<TransferRequest> = pairs
                    .iter()
                    .map(|p| TransferRequest { src: p.src.clone(), dst: p.dst.clone(), size })
                    .collect();
                for (slot, pnfs) in [&lv08, &cm02, &ideal].iter().enumerate() {
                    let preds = pnfs.predict("g5k_test", &reqs).expect("prediction");
                    for (m, p) in measured.iter().zip(&preds) {
                        errs[slot].push(log2_error(p.duration, *m).abs());
                    }
                }
            }
            ModelPoint {
                size,
                lv08: median(&errs[0]).expect("samples"),
                cm02: median(&errs[1]).expect("samples"),
                ideal: median(&errs[2]).expect("samples"),
            }
        })
        .collect()
}

/// ASCII rendering of the model ablation.
pub fn render_model_ablation(points: &[ModelPoint]) -> String {
    let mut out = String::from(
        "figM — TCP flow-model calibration ablation (graphene 10→10)\n\
         median |log2 error|; LV08 is the paper's model, CM02 its ancestor\n\n",
    );
    out.push_str(&format!(
        "{:>10} | {:>8} {:>8} {:>8}\n",
        "size(B)", "LV08", "CM02", "ideal"
    ));
    out.push_str(&"-".repeat(42));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:>10.2e} | {:>8.3} {:>8.3} {:>8.3}\n",
            p.size, p.lv08, p.cm02, p.ideal
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g5k_test_beats_cabinets() {
        let lab = Lab::new();
        let points = run_flavor_ablation(&lab, 1, 11);
        assert_eq!(points.len(), 4);
        // the paper's finding must hold on concurrent cluster workloads
        for p in &points {
            if p.figure == "fig5" || p.figure == "fig8" {
                assert!(
                    p.g5k_test < p.g5k_cabinets,
                    "{}: test {} vs cabinets {}",
                    p.figure,
                    p.g5k_test,
                    p.g5k_cabinets
                );
            }
        }
        let text = render_flavor_ablation(&points);
        assert!(text.contains("figF"));
    }

    #[test]
    fn calibrated_models_beat_uncalibrated() {
        let lab = Lab::new();
        let points = run_model_ablation(&lab, 2, 17);
        let pool = |f: fn(&ModelPoint) -> f64| -> f64 {
            points.iter().map(f).sum::<f64>() / points.len() as f64
        };
        let (lv08, cm02, ideal) = (pool(|p| p.lv08), pool(|p| p.cm02), pool(|p| p.ideal));
        // both empirically-calibrated models must beat the raw one — the
        // reason such factors exist at all; LV08 vs CM02 bracket the true
        // wire efficiency here and are statistically indistinguishable
        assert!(lv08 < ideal, "LV08 {lv08} must beat ideal {ideal}");
        assert!(cm02 < ideal, "CM02 {cm02} must beat ideal {ideal}");
        let text = render_model_ablation(&points);
        assert!(text.contains("figM"));
    }

    #[test]
    fn calibration_improves_small_size_errors() {
        let lab = Lab::new();
        let points = run_calibration_ablation(&lab, 2, 13);
        // at 100 KB the latency term dominates: calibrated latencies must
        // cut the error magnitude substantially
        let p0 = &points[0];
        assert!(
            p0.calibrated.abs() < p0.hardcoded.abs() * 0.7,
            "calibrated {} vs hardcoded {}",
            p0.calibrated,
            p0.hardcoded
        );
        let text = render_calibration_ablation(&points);
        assert!(text.contains("figC"));
    }
}
