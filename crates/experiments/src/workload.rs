//! Workload generation for the evaluation (§V-A).
//!
//! The paper's experimental grid: transfer sizes on a 10-point geometric
//! progression from 0.1 MB to 10 GB; 1/10/30/50/60 sources and
//! destinations; two topologies — CLUSTER (all nodes from one cluster)
//! and GRID_MULTI (nodes from all clusters of the three sites, every
//! transfer crossing a site boundary); when `nsources < ndestinations`
//! some nodes source several transfers (and symmetrically).

use g5k::RefApi;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The paper's 10 transfer sizes (bytes), geometric from 1e5 to 1e10 —
/// matching the tick labels of its figures (1.00e+05, 3.59e+05, …).
pub fn sizes() -> [f64; 10] {
    let mut s = [0.0; 10];
    for (k, v) in s.iter_mut().enumerate() {
        *v = 10f64.powf(5.0 + 5.0 * k as f64 / 9.0);
    }
    s
}

/// The size above which the paper calls the model accurate
/// (`1.67·10⁷ bytes`).
pub const ACCURACY_THRESHOLD: f64 = 1.67e7;

/// Where the nodes of an experiment come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// All sources and destinations from one named cluster.
    Cluster(String),
    /// Nodes from every cluster, all transfers crossing site boundaries.
    GridMulti,
}

/// One transfer endpoint pair (host names shared by the predictor
/// platform and the testbed network).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowPair {
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
}

/// Draws the paper's endpoint sets: `n_src` distinct sources, `n_dst`
/// distinct destinations, paired round-robin so `max(n_src, n_dst)` flows
/// exist. Sources and destinations are disjoint when the pool allows.
pub fn draw_pairs(
    api: &RefApi,
    topology: &Topology,
    n_src: usize,
    n_dst: usize,
    seed: u64,
) -> Vec<FlowPair> {
    let mut rng = SmallRng::seed_from_u64(seed);
    match topology {
        Topology::Cluster(name) => {
            let pool = api.cluster_hosts(name);
            assert!(
                !pool.is_empty(),
                "unknown cluster '{name}' in workload"
            );
            let (srcs, dsts) = split_sample(&pool, n_src, n_dst, &mut rng);
            pair_round_robin(&srcs, &dsts)
        }
        Topology::GridMulti => {
            // hosts grouped per site, to enforce the cross-site constraint
            let site_hosts: Vec<Vec<String>> = api
                .sites
                .iter()
                .map(|s| {
                    s.clusters
                        .iter()
                        .flat_map(|c| (1..=c.nodes).map(|i| s.fqdn(c, i)))
                        .collect()
                })
                .collect();
            let site_of = |h: &str| -> usize {
                site_hosts
                    .iter()
                    .position(|hs| hs.iter().any(|x| x == h))
                    .expect("host from pool")
            };
            let all: Vec<String> = site_hosts.iter().flatten().cloned().collect();
            let (srcs, dsts) = split_sample(&all, n_src, n_dst, &mut rng);
            // round-robin pairing with a cross-site fix-up: if the natural
            // partner shares the site, scan forward for one that does not
            let n = n_src.max(n_dst);
            let mut pairs = Vec::with_capacity(n);
            for i in 0..n {
                let src = &srcs[i % srcs.len()];
                let src_site = site_of(src);
                let mut dst = None;
                for off in 0..dsts.len() {
                    let cand = &dsts[(i + off) % dsts.len()];
                    if site_of(cand) != src_site {
                        dst = Some(cand.clone());
                        break;
                    }
                }
                let dst = dst.unwrap_or_else(|| {
                    // all drawn destinations share the source's site:
                    // draw a fresh one elsewhere
                    loop {
                        let cand = all[rng.gen_range(0..all.len())].clone();
                        if site_of(&cand) != src_site {
                            break cand;
                        }
                    }
                });
                pairs.push(FlowPair { src: src.clone(), dst });
            }
            pairs
        }
    }
}

/// Samples `n_src` + `n_dst` hosts, disjoint when the pool is large
/// enough, each set free of duplicates.
fn split_sample(
    pool: &[String],
    n_src: usize,
    n_dst: usize,
    rng: &mut SmallRng,
) -> (Vec<String>, Vec<String>) {
    assert!(n_src > 0 && n_dst > 0, "need at least one endpoint per side");
    assert!(
        n_src <= pool.len() && n_dst <= pool.len(),
        "cluster of {} nodes cannot provide {} sources / {} destinations",
        pool.len(),
        n_src,
        n_dst
    );
    let mut shuffled: Vec<String> = pool.to_vec();
    shuffled.shuffle(rng);
    if n_src + n_dst <= shuffled.len() {
        let srcs = shuffled[..n_src].to_vec();
        let dsts = shuffled[n_src..n_src + n_dst].to_vec();
        (srcs, dsts)
    } else {
        // overlap unavoidable (e.g. 50+50 on a 79-node cluster): reuse the
        // tail of the shuffle for destinations
        let srcs = shuffled[..n_src].to_vec();
        let mut dsts = shuffled[n_src..].to_vec();
        let mut i = 0;
        while dsts.len() < n_dst {
            dsts.push(shuffled[i].clone());
            i += 1;
        }
        (srcs, dsts)
    }
}

fn pair_round_robin(srcs: &[String], dsts: &[String]) -> Vec<FlowPair> {
    let n = srcs.len().max(dsts.len());
    (0..n)
        .map(|i| FlowPair {
            src: srcs[i % srcs.len()].clone(),
            dst: dsts[i % dsts.len()].clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use g5k::synth;

    #[test]
    fn sizes_match_paper_ticks() {
        let s = sizes();
        let expect = [
            1.00e5, 3.59e5, 1.29e6, 4.64e6, 1.67e7, 5.99e7, 2.15e8, 7.74e8, 2.78e9, 1.00e10,
        ];
        for (got, want) in s.iter().zip(&expect) {
            assert!(
                (got / want - 1.0).abs() < 0.01,
                "{got} vs paper tick {want}"
            );
        }
    }

    #[test]
    fn cluster_draw_counts_and_distinctness() {
        let api = synth::standard();
        let pairs = draw_pairs(&api, &Topology::Cluster("sagittaire".into()), 10, 30, 42);
        assert_eq!(pairs.len(), 30, "max(nsrc, ndst) flows");
        let srcs: std::collections::HashSet<&str> =
            pairs.iter().map(|p| p.src.as_str()).collect();
        assert_eq!(srcs.len(), 10, "10 distinct sources");
        let dsts: std::collections::HashSet<&str> =
            pairs.iter().map(|p| p.dst.as_str()).collect();
        assert_eq!(dsts.len(), 30);
        for p in &pairs {
            assert!(p.src.contains("sagittaire"));
            assert!(p.dst.contains("sagittaire"));
        }
    }

    #[test]
    fn oversubscribed_cluster_reuses_nodes() {
        let api = synth::standard();
        // 50+50 on the 79-node sagittaire: overlap is unavoidable but each
        // side stays duplicate-free
        let pairs = draw_pairs(&api, &Topology::Cluster("sagittaire".into()), 50, 50, 7);
        assert_eq!(pairs.len(), 50);
        let srcs: std::collections::HashSet<&str> =
            pairs.iter().map(|p| p.src.as_str()).collect();
        assert_eq!(srcs.len(), 50);
    }

    #[test]
    fn grid_multi_crosses_sites() {
        let api = synth::standard();
        let pairs = draw_pairs(&api, &Topology::GridMulti, 60, 60, 3);
        assert_eq!(pairs.len(), 60);
        let site = |h: &str| h.split('.').nth(1).unwrap().to_string();
        for p in &pairs {
            assert_ne!(site(&p.src), site(&p.dst), "{p:?} must cross sites");
        }
    }

    #[test]
    fn draws_are_seed_deterministic() {
        let api = synth::standard();
        let a = draw_pairs(&api, &Topology::Cluster("graphene".into()), 30, 30, 5);
        let b = draw_pairs(&api, &Topology::Cluster("graphene".into()), 30, 30, 5);
        let c = draw_pairs(&api, &Topology::Cluster("graphene".into()), 30, 30, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "cannot provide")]
    fn impossible_draw_panics() {
        let api = synth::standard();
        let _ = draw_pairs(&api, &Topology::Cluster("chicon".into()), 50, 50, 1);
    }
}
