//! Command-line driver regenerating the paper's evaluation.
//!
//! ```text
//! experiments --all            # every figure + summary (reps = 10)
//! experiments --figure fig8    # one figure
//! experiments --figure fig1    # topology inventory (paper diagram)
//! experiments --figure figV    # ground-truth engine validation
//! experiments --summary        # pooled §V-B numbers only
//! experiments --reps 3 --out results/
//! ```

use std::io::Write;
use std::path::PathBuf;

use experiments::ablation::{
    render_calibration_ablation, render_flavor_ablation, render_model_ablation,
    run_calibration_ablation, run_flavor_ablation, run_model_ablation,
};
use experiments::background::{render_background, run_background_ablation};
use experiments::figures::{figure, figures, run_figure, Lab};
use experiments::render::{fig1_inventory, fig2_inventory, figure_csv, figure_plot, figure_table};
use experiments::summary::summarize;
use experiments::validation::{render_validation, run_validation};

struct Args {
    figures: Vec<String>,
    reps: usize,
    seed: u64,
    out: Option<PathBuf>,
    summary_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: Vec::new(),
        reps: 10,
        seed: 20120924, // the CLUSTER 2012 conference date
        out: None,
        summary_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => {
                args.figures = figures().iter().map(|f| f.id.to_string()).collect();
                args.figures.insert(0, "fig2".into());
                args.figures.insert(0, "fig1".into());
                args.figures.push("figV".into());
                args.figures.push("figF".into());
                args.figures.push("figC".into());
                args.figures.push("figB".into());
                args.figures.push("figM".into());
            }
            "--figure" => {
                let id = it.next().ok_or("--figure needs an id")?;
                args.figures.push(id);
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                args.out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?));
            }
            "--summary" => args.summary_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--all | --figure figN ...] [--reps N] \
                     [--seed S] [--out DIR] [--summary]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.figures.is_empty() {
        args.figures = figures().iter().map(|f| f.id.to_string()).collect();
    }
    Ok(args)
}

fn write_out(out: &Option<PathBuf>, name: &str, content: &str) {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(name);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create file"));
        f.write_all(content.as_bytes()).expect("write file");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!("building the lab (platforms + testbed)…");
    let lab = Lab::new();
    let mut evaluated = Vec::new();

    for id in &args.figures {
        match id.as_str() {
            "fig1" => {
                let text = fig1_inventory(&lab);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "fig1.txt", &text);
            }
            "fig2" => {
                let text = fig2_inventory(&lab);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "fig2.txt", &text);
            }
            "figV" | "figv" | "val" => {
                eprintln!("running figV (engine validation)…");
                let points = run_validation(&lab, args.seed);
                let text = render_validation(&points);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "figV.txt", &text);
            }
            "figF" | "figf" | "flavors" => {
                eprintln!("running figF (platform flavor ablation)…");
                let points = run_flavor_ablation(&lab, args.reps.min(3), args.seed);
                let text = render_flavor_ablation(&points);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "figF.txt", &text);
            }
            "figC" | "figc" | "calibration" => {
                eprintln!("running figC (latency calibration ablation)…");
                let points = run_calibration_ablation(&lab, args.reps, args.seed);
                let text = render_calibration_ablation(&points);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "figC.txt", &text);
            }
            "figM" | "figm" | "models" => {
                eprintln!("running figM (TCP model calibration ablation)…");
                let points = run_model_ablation(&lab, args.reps, args.seed);
                let text = render_model_ablation(&points);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "figM.txt", &text);
            }
            "figB" | "figb" | "background" => {
                eprintln!("running figB (background traffic ablation)…");
                let points =
                    run_background_ablation(&lab, 7.74e8, &[0, 5, 10, 20, 40], args.reps, args.seed);
                let text = render_background(&points);
                if !args.summary_only {
                    println!("{text}");
                }
                write_out(&args.out, "figB.txt", &text);
            }
            other => {
                let Some(spec) = figure(other) else {
                    eprintln!("error: unknown figure '{other}'");
                    std::process::exit(2);
                };
                eprintln!("running {other} ({}) with {} reps…", spec.title, args.reps);
                let t0 = std::time::Instant::now();
                let data = run_figure(&lab, &spec, args.reps, args.seed);
                eprintln!("  done in {:.2}s", t0.elapsed().as_secs_f64());
                if !args.summary_only {
                    println!("{}", figure_table(&data));
                    println!("{}", figure_plot(&data));
                }
                write_out(
                    &args.out,
                    &format!("{other}.txt"),
                    &format!("{}\n{}", figure_table(&data), figure_plot(&data)),
                );
                write_out(&args.out, &format!("{other}.csv"), &figure_csv(&data));
                evaluated.push(data);
            }
        }
    }

    if !evaluated.is_empty() {
        if let Some(s) = summarize(&evaluated) {
            let text = s.render();
            println!("{text}");
            write_out(&args.out, "summary.txt", &text);
        }
    }
}
