//! Descriptive statistics for the error plots.
//!
//! The paper reports, per transfer size, the median of the per-transfer
//! errors `log2(prediction) − log2(measure)` with boxes for dispersion,
//! and pools all large-size errors into a median/σ/quantile summary.

/// Five-number box summary (the paper's error boxes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub hi: f64,
}

/// Linear-interpolated quantile of a sorted slice (`q` in `[0, 1]`).
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    }
}

/// Sorts a copy of the samples and returns the box summary, or `None` for
/// empty input.
pub fn box_stats(samples: &[f64]) -> Option<BoxStats> {
    if samples.is_empty() {
        return None;
    }
    let mut s: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if s.is_empty() {
        return None;
    }
    s.sort_by(f64::total_cmp);
    Some(BoxStats {
        lo: s[0],
        q1: quantile_sorted(&s, 0.25),
        median: quantile_sorted(&s, 0.5),
        q3: quantile_sorted(&s, 0.75),
        hi: s[s.len() - 1],
    })
}

/// Median of the samples (`None` when empty).
pub fn median(samples: &[f64]) -> Option<f64> {
    box_stats(samples).map(|b| b.median)
}

/// Mean of the samples.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// Population standard deviation.
pub fn std_dev(samples: &[f64]) -> Option<f64> {
    let m = mean(samples)?;
    let var = samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / samples.len() as f64;
    Some(var.sqrt())
}

/// Fraction of samples with `|v| < threshold`.
pub fn fraction_below(samples: &[f64], threshold: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.iter().filter(|v| v.abs() < threshold).count();
    Some(n as f64 / samples.len() as f64)
}

/// The paper's error metric: `log2(prediction) − log2(measure)`.
pub fn log2_error(prediction: f64, measure: f64) -> f64 {
    (prediction / measure).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_of_known_values() {
        let b = box_stats(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(b.lo, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.hi, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
    }

    #[test]
    fn even_count_median_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn empty_and_nan_inputs() {
        assert!(box_stats(&[]).is_none());
        assert!(box_stats(&[f64::NAN]).is_none());
        let b = box_stats(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(b.median, 2.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[2.0, 2.0, 2.0]), Some(0.0));
    }

    #[test]
    fn fraction_below_counts_strictly() {
        let f = fraction_below(&[0.1, -0.2, 0.6, -0.7], 0.575).unwrap();
        assert_eq!(f, 0.5);
    }

    #[test]
    fn log2_error_signs() {
        // prediction twice the measure → +1; half → −1
        assert_eq!(log2_error(2.0, 1.0), 1.0);
        assert_eq!(log2_error(1.0, 2.0), -1.0);
        assert_eq!(log2_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn single_sample_box() {
        let b = box_stats(&[7.0]).unwrap();
        assert_eq!(b, BoxStats { lo: 7.0, q1: 7.0, median: 7.0, q3: 7.0, hi: 7.0 });
    }
}
