//! The paper's pooled accuracy summary (§V-B, closing paragraph):
//!
//! > "if we consider only results for transfer whose size > 1.67·10⁷
//! > bytes, the median of the absolute value of all the errors is 0.149,
//! > with a standard deviation of 0.532 ... 74% of the predictions have
//! > an absolute error less than 0.575."

use crate::figures::FigureData;
use crate::stats::{fraction_below, median, std_dev};
use crate::workload::ACCURACY_THRESHOLD;

/// Pooled accuracy over every figure's large transfers.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Median of |error| for sizes above the threshold (paper: 0.149).
    pub median_abs_error: f64,
    /// Standard deviation of the errors (paper: 0.532).
    pub std_error: f64,
    /// Fraction with |error| < 0.575 (paper: 0.74).
    pub fraction_below_0575: f64,
    /// Number of pooled samples.
    pub n: usize,
}

impl Summary {
    /// The multiplicative factor half the predictions stay within
    /// (paper: "no more than a factor 0.11", i.e. 2^0.149 ≈ 1.11).
    pub fn median_factor(&self) -> f64 {
        2f64.powf(self.median_abs_error)
    }

    /// Renders the summary like the paper's text.
    pub fn render(&self) -> String {
        format!(
            "pooled over all figures, sizes > 1.67e7 bytes ({} samples):\n\
             median |log2 error| = {:.3}   (paper: 0.149)\n\
             std of errors       = {:.3}   (paper: 0.532)\n\
             |error| < 0.575     = {:.0}%    (paper: 74%)\n\
             half the predictions within a factor {:.3} of the measure (paper: 1.11)\n",
            self.n,
            self.median_abs_error,
            self.std_error,
            self.fraction_below_0575 * 100.0,
            self.median_factor()
        )
    }
}

/// Pools every figure's large-size errors into the paper's summary.
pub fn summarize(figures: &[FigureData]) -> Option<Summary> {
    let errors: Vec<f64> = figures
        .iter()
        .flat_map(|f| f.all_errors.iter())
        .filter(|(size, _)| *size > ACCURACY_THRESHOLD)
        .map(|(_, e)| *e)
        .collect();
    if errors.is_empty() {
        return None;
    }
    let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
    Some(Summary {
        median_abs_error: median(&abs)?,
        std_error: std_dev(&errors)?,
        fraction_below_0575: fraction_below(&errors, 0.575)?,
        n: errors.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FigureData, FigureSpec};
    use crate::workload::Topology;

    fn data_with_errors(errors: Vec<(f64, f64)>) -> FigureData {
        FigureData {
            spec: FigureSpec {
                id: "figX",
                title: "t",
                topology: Topology::Cluster("sagittaire".into()),
                n_src: 1,
                n_dst: 1,
            },
            points: vec![],
            all_errors: errors,
        }
    }

    #[test]
    fn only_large_sizes_pool() {
        let figs = vec![
            data_with_errors(vec![(1e5, -8.0), (1e8, 0.1)]),
            data_with_errors(vec![(1e10, -0.2), (1e6, 5.0)]),
        ];
        let s = summarize(&figs).unwrap();
        assert_eq!(s.n, 2, "small sizes excluded");
        assert!((s.median_abs_error - 0.15).abs() < 1e-9);
        assert_eq!(s.fraction_below_0575, 1.0);
    }

    #[test]
    fn empty_pool_is_none() {
        let figs = vec![data_with_errors(vec![(1e5, -8.0)])];
        assert!(summarize(&figs).is_none());
    }

    #[test]
    fn median_factor_matches_paper_arithmetic() {
        let s = Summary {
            median_abs_error: 0.149,
            std_error: 0.532,
            fraction_below_0575: 0.74,
            n: 100,
        };
        // 2^0.149 = 1.109 — the paper phrases this as "differing ... by no
        // more than a factor 0.11"
        assert!((s.median_factor() - 1.109).abs() < 0.01);
        let text = s.render();
        assert!(text.contains("0.149"));
        assert!(text.contains("74%"));
    }
}
