//! Background-traffic ablation — the paper's §VI outlook: "We also plan
//! to model the background traffic of Grid'5000 ... we will have to find
//! a tradeoff between a very accurate dynamic model of the platform
//! involving too much data ... or a coarse model."
//!
//! This module quantifies what that modeling buys. The ground truth runs
//! the foreground workload *plus* long-lived cross-site background flows;
//! the predictor forecasts either blind (today's Pilgrim: background
//! unmodeled) or aware (background flows added to the simulated request —
//! the coarse model the paper envisions). Referenced as "figB" in
//! EXPERIMENTS.md.

use packetsim::FlowSpec;
use pilgrim_core::TransferRequest;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::figures::Lab;
use crate::stats::{box_stats, log2_error, BoxStats};
use crate::workload::FlowPair;

/// Draws `n` directed pairs from site `src_site` to site `dst_site`
/// (distinct sources, distinct destinations) — the concentrated load that
/// actually stresses one backbone direction.
pub fn draw_directed_pairs(
    api: &g5k::RefApi,
    src_site: &str,
    dst_site: &str,
    n: usize,
    seed: u64,
) -> Vec<FlowPair> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let hosts_of = |site: &str| -> Vec<String> {
        let s = api.site(site).expect("known site");
        s.clusters
            .iter()
            .flat_map(|c| (1..=c.nodes).map(|i| s.fqdn(c, i)))
            .collect()
    };
    let mut srcs = hosts_of(src_site);
    let mut dsts = hosts_of(dst_site);
    assert!(n <= srcs.len() && n <= dsts.len(), "site too small for {n} endpoints");
    srcs.shuffle(&mut rng);
    dsts.shuffle(&mut rng);
    (0..n)
        .map(|i| FlowPair { src: srcs[i].clone(), dst: dsts[i].clone() })
        .collect()
}

/// Background load description: `n_flows` bulk transfers crossing site
/// boundaries, large enough to outlast the foreground workload.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundSpec {
    /// Number of concurrent background flows.
    pub n_flows: usize,
    /// Bytes per background flow.
    pub bytes: f64,
}

/// One row of the ablation table.
#[derive(Clone, Debug)]
pub struct BackgroundPoint {
    /// Background flow count.
    pub n_background: usize,
    /// Error box with the predictor blind to the background.
    pub blind: BoxStats,
    /// Error box with the background modeled in the request.
    pub aware: BoxStats,
}

fn to_flowspecs(lab: &Lab, pairs: &[FlowPair], bytes: f64) -> Vec<FlowSpec> {
    pairs
        .iter()
        .map(|p| FlowSpec {
            src: lab.tnet.network.node_by_name(&p.src).expect("host"),
            dst: lab.tnet.network.node_by_name(&p.dst).expect("host"),
            bytes,
            start: 0.0,
        })
        .collect()
}

fn to_requests(pairs: &[FlowPair], bytes: f64) -> Vec<TransferRequest> {
    pairs
        .iter()
        .map(|p| TransferRequest { src: p.src.clone(), dst: p.dst.clone(), size: bytes })
        .collect()
}

/// Measures foreground durations with the background load present.
pub fn measure_with_background(
    lab: &Lab,
    foreground: &[FlowPair],
    size: f64,
    background: &[FlowPair],
    bg_bytes: f64,
    seed: u64,
) -> Vec<f64> {
    let tb = lab.tnet.testbed(lab.testbed_config.clone());
    let mut flows = to_flowspecs(lab, foreground, size);
    flows.extend(to_flowspecs(lab, background, bg_bytes));
    tb.measure(&flows, seed)
        .iter()
        .take(foreground.len())
        .map(|m| m.duration)
        .collect()
}

/// Predicts foreground durations, optionally modeling the background.
pub fn predict_with_background(
    lab: &Lab,
    foreground: &[FlowPair],
    size: f64,
    background: Option<(&[FlowPair], f64)>,
    platform: &str,
) -> Vec<f64> {
    let mut reqs = to_requests(foreground, size);
    if let Some((bg, bg_bytes)) = background {
        reqs.extend(to_requests(bg, bg_bytes));
    }
    lab.pnfs
        .predict(platform, &reqs)
        .expect("prediction")
        .iter()
        .take(foreground.len())
        .map(|p| p.duration)
        .collect()
}

/// Runs the ablation: foreground = 10 Lyon→Nancy transfers of `size`
/// bytes, background = `n` bulk flows on the same backbone direction,
/// `reps` repetitions each.
pub fn run_background_ablation(
    lab: &Lab,
    size: f64,
    bg_counts: &[usize],
    reps: usize,
    base_seed: u64,
) -> Vec<BackgroundPoint> {
    bg_counts
        .iter()
        .map(|&n_bg| {
            let mut blind_errs = Vec::new();
            let mut aware_errs = Vec::new();
            for rep in 0..reps {
                let seed = base_seed
                    ^ (n_bg as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (rep as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let fore = draw_directed_pairs(&lab.api, "lyon", "nancy", 10, seed);
                let bg = if n_bg == 0 {
                    Vec::new()
                } else {
                    draw_directed_pairs(&lab.api, "lyon", "nancy", n_bg, !seed)
                };
                let bg_bytes = 4.0 * size; // outlasts the foreground
                let measured = measure_with_background(lab, &fore, size, &bg, bg_bytes, seed);
                let blind = predict_with_background(lab, &fore, size, None, "g5k_test");
                let aware = predict_with_background(
                    lab,
                    &fore,
                    size,
                    Some((&bg, bg_bytes)),
                    "g5k_test",
                );
                for ((m, pb), pa) in measured.iter().zip(&blind).zip(&aware) {
                    blind_errs.push(log2_error(*pb, *m));
                    aware_errs.push(log2_error(*pa, *m));
                }
            }
            BackgroundPoint {
                n_background: n_bg,
                blind: box_stats(&blind_errs).expect("samples"),
                aware: box_stats(&aware_errs).expect("samples"),
            }
        })
        .collect()
}

/// ASCII rendering of the ablation table.
pub fn render_background(points: &[BackgroundPoint]) -> String {
    let mut out = String::from(
        "figB — background-traffic ablation (10 Lyon→Nancy transfers, 774 MB each,\n\
         n bulk background flows on the same backbone direction)\n\
         error log2(pred)−log2(meas); blind = background unmodeled, aware = modeled\n\n",
    );
    out.push_str(&format!(
        "{:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}\n",
        "bg", "blind q1", "median", "q3", "aware q1", "median", "q3"
    ));
    out.push_str(&"-".repeat(66));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:>6} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}\n",
            p.n_background,
            p.blind.q1,
            p.blind.median,
            p.blind.q3,
            p.aware.q1,
            p.aware.median,
            p.aware.q3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_slows_measured_foreground() {
        let lab = Lab::new();
        let fore = draw_directed_pairs(&lab.api, "lyon", "nancy", 5, 1);
        let bg = draw_directed_pairs(&lab.api, "lyon", "nancy", 20, 2);
        let without = measure_with_background(&lab, &fore, 7.74e8, &[], 0.0, 3);
        let with = measure_with_background(&lab, &fore, 7.74e8, &bg, 4e9, 3);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&with) > mean(&without) * 1.3,
            "20 same-direction background flows must slow things: {} vs {}",
            mean(&with),
            mean(&without)
        );
    }

    #[test]
    fn modeling_the_background_improves_forecasts() {
        let lab = Lab::new();
        let points = run_background_ablation(&lab, 7.74e8, &[0, 20], 2, 7);
        assert_eq!(points.len(), 2);
        // without background both predictors coincide
        let p0 = &points[0];
        assert!((p0.blind.median - p0.aware.median).abs() < 1e-9);
        // with background, the blind forecast degrades and the aware one
        // stays markedly closer
        let p20 = &points[1];
        assert!(
            p20.blind.median.abs() > p20.aware.median.abs() + 0.1,
            "blind {:?} vs aware {:?}",
            p20.blind,
            p20.aware
        );
        let text = render_background(&points);
        assert!(text.contains("figB"));
    }
}
