//! Rendering of figure data: ASCII tables/plots for the terminal, CSV for
//! external plotting, and the topology inventories standing in for the
//! paper's diagrams (figures 1 and 2).

use crate::figures::{FigureData, Lab};
use g5k::Aggregation;

/// ASCII table of one figure: one row per size, the error box, and the
/// median durations (the paper plots median measured duration on the
/// right axis).
pub fn figure_table(data: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", data.spec.id, data.spec.title));
    out.push_str(&format!(
        "{:>10} | {:>7} {:>7} {:>7} {:>7} {:>7} | {:>12} {:>12} | {:>4}\n",
        "size(B)", "min", "q1", "median", "q3", "max", "measured(s)", "predicted(s)", "n"
    ));
    out.push_str(&"-".repeat(98));
    out.push('\n');
    for p in &data.points {
        out.push_str(&format!(
            "{:>10.2e} | {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} | {:>12.4} {:>12.4} | {:>4}\n",
            p.size,
            p.err.lo,
            p.err.q1,
            p.err.median,
            p.err.q3,
            p.err.hi,
            p.median_measured,
            p.median_predicted,
            p.n
        ));
    }
    out
}

/// ASCII error-vs-size plot: the paper's error line, one row per size.
pub fn figure_plot(data: &FigureData) -> String {
    const COLS: usize = 61; // error axis −12 … +3, 4 columns per unit
    const LO: f64 = -12.0;
    const HI: f64 = 3.0;
    let col = |e: f64| -> usize {
        let clamped = e.clamp(LO, HI);
        ((clamped - LO) / (HI - LO) * (COLS - 1) as f64).round() as usize
    };
    let zero = col(0.0);
    let mut out = String::new();
    out.push_str(&format!(
        "error log2(prediction)-log2(measure)   [{}..{}], '|' = 0\n",
        LO, HI
    ));
    for p in &data.points {
        let mut row = vec![b' '; COLS];
        let (a, b) = (col(p.err.q1), col(p.err.q3));
        for c in row.iter_mut().take(b + 1).skip(a) {
            *c = b'-';
        }
        row[zero] = b'|';
        row[col(p.err.median)] = b'*';
        out.push_str(&format!(
            "{:>9.2e} {}\n",
            p.size,
            String::from_utf8(row).expect("ascii")
        ));
    }
    out
}

/// CSV of one figure (`size,err_lo,err_q1,err_median,err_q3,err_hi,
/// measured_median_s,predicted_median_s,n`).
pub fn figure_csv(data: &FigureData) -> String {
    let mut out = String::from(
        "size_bytes,err_lo,err_q1,err_median,err_q3,err_hi,measured_median_s,predicted_median_s,n\n",
    );
    for p in &data.points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            p.size,
            p.err.lo,
            p.err.q1,
            p.err.median,
            p.err.q3,
            p.err.hi,
            p.median_measured,
            p.median_predicted,
            p.n
        ));
    }
    out
}

/// Figure 1 stand-in: the three-site backbone inventory.
pub fn fig1_inventory(lab: &Lab) -> String {
    let mut out = String::from("fig1 — Grid'5000 slice overview (paper Figure 1)\n\n");
    for site in &lab.api.sites {
        let nodes: u32 = site.clusters.iter().map(|c| c.nodes).sum();
        out.push_str(&format!(
            "site {:<8} router {:<10} backplane {:>12} | {} nodes in {} clusters\n",
            site.name,
            site.router.name,
            if site.router.backplane_bps.is_finite() {
                format!("{:.1} Gbit/s", site.router.backplane_bps * 8.0 / 1e9)
            } else {
                "non-blocking".to_string()
            },
            nodes,
            site.clusters.len(),
        ));
    }
    out.push('\n');
    for bb in &lab.api.backbone {
        out.push_str(&format!(
            "backbone {:<6} ↔ {:<6} {:>5.0} Gbit/s, {:.2} ms one-way (RENATER L2VPN)\n",
            bb.a,
            bb.b,
            bb.rate_bps * 8.0 / 1e9,
            bb.latency_s * 1e3
        ));
    }
    out.push_str(&format!(
        "\npredictor platform: {} hosts, {} links, {} zones, {} stored route entries\n",
        lab.platform.host_count(),
        lab.platform.link_count(),
        lab.platform.zone_count(),
        lab.platform.stored_route_entries(),
    ));
    out
}

/// Figure 2 stand-in: sagittaire and graphene wiring.
pub fn fig2_inventory(lab: &Lab) -> String {
    let mut out = String::from("fig2 — sagittaire and graphene wiring (paper Figure 2)\n\n");
    for name in ["sagittaire", "graphene"] {
        let (site, cluster) = lab.api.cluster(name).expect("standard clusters");
        out.push_str(&format!(
            "cluster {:<11} ({} nodes, {:.0} Gbit/s NICs, site {})\n",
            cluster.name,
            cluster.nodes,
            cluster.node.nic_bps * 8.0 / 1e9,
            site.name
        ));
        match &cluster.aggregation {
            Aggregation::Direct => {
                out.push_str(&format!(
                    "  all {} NICs wired directly into {}\n",
                    cluster.nodes, site.router.name
                ));
            }
            Aggregation::Groups(groups) => {
                for g in groups {
                    out.push_str(&format!(
                        "  {:<11} nodes {:>3}–{:<3} ({:>2} × 1 Gbit/s) — {:.0} Gbit/s uplink to {}\n",
                        g.switch,
                        g.first,
                        g.last,
                        g.last - g.first + 1,
                        g.uplink_bps * 8.0 / 1e9,
                        site.router.name
                    ));
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FigureSpec, SizePoint};
    use crate::stats::BoxStats;
    use crate::workload::Topology;

    fn fake_data() -> FigureData {
        FigureData {
            spec: FigureSpec {
                id: "fig3",
                title: "test",
                topology: Topology::Cluster("sagittaire".into()),
                n_src: 1,
                n_dst: 10,
            },
            points: vec![SizePoint {
                size: 1e5,
                err: BoxStats { lo: -9.0, q1: -8.5, median: -8.0, q3: -7.5, hi: -7.0 },
                median_measured: 0.9,
                median_predicted: 0.0034,
                n: 100,
            }],
            all_errors: vec![(1e5, -8.0)],
        }
    }

    #[test]
    fn table_contains_rows() {
        let t = figure_table(&fake_data());
        assert!(t.contains("fig3"));
        assert!(t.contains("-8.00"), "{t}");
        assert!(t.contains("0.9"), "{t}");
    }

    #[test]
    fn plot_marks_median_and_zero() {
        let p = figure_plot(&fake_data());
        assert!(p.contains('*'));
        assert!(p.contains('|'));
    }

    #[test]
    fn csv_is_parseable() {
        let c = figure_csv(&fake_data());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].split(',').count(), 9);
    }

    #[test]
    fn inventories_describe_the_paper_hardware() {
        let lab = Lab::new();
        let f1 = fig1_inventory(&lab);
        assert!(f1.contains("lyon"), "{f1}");
        assert!(f1.contains("RENATER"), "{f1}");
        let f2 = fig2_inventory(&lab);
        assert!(f2.contains("sgraphene4"), "{f2}");
        assert!(f2.contains("79"), "{f2}");
    }
}
