//! # experiments — the paper's evaluation, regenerated
//!
//! This crate reruns §V of the paper end to end: for every figure it
//! draws the paper's workloads, *measures* them on the ground-truth
//! testbed (fluid TCP over the true topology, per-segment DES for
//! validation) and *predicts* them through PNFS over the `g5k_test`
//! platform model, then reports the error
//! `log2(prediction) − log2(measure)` per transfer size exactly like the
//! paper's plots, plus the pooled accuracy summary.
//!
//! Run it with the `experiments` binary:
//!
//! ```text
//! experiments --all --reps 10 --out results/
//! experiments --figure fig8
//! experiments --summary
//! ```
//!
//! Modules: [`workload`] (sizes, CLUSTER/GRID_MULTI draws), [`figures`](mod@figures)
//! (the nine figure specs and the runner), [`stats`] (boxes, medians, the
//! error metric), [`render`] (tables, ASCII plots, CSV, the Fig 1–2
//! inventories), [`summary`] (the pooled §V-B numbers), [`validation`]
//! (packet-vs-fluid ground-truth agreement).

pub mod ablation;
pub mod background;
pub mod figures;
pub mod render;
pub mod stats;
pub mod summary;
pub mod validation;
pub mod workload;

pub use ablation::{run_calibration_ablation, run_flavor_ablation, run_model_ablation, CalibrationPoint, FlavorPoint, ModelPoint};
pub use background::{run_background_ablation, BackgroundPoint, BackgroundSpec};
pub use figures::{figure, figures, run_figure, FigureData, FigureSpec, Lab, SizePoint};
pub use stats::{box_stats, log2_error, BoxStats};
pub use summary::{summarize, Summary};
pub use workload::{draw_pairs, sizes, FlowPair, Topology, ACCURACY_THRESHOLD};
