//! Engine cross-validation "figure": packet-level vs fluid ground truth.
//!
//! The paper's measured side is real hardware; ours is a simulator, so the
//! reproduction owes the reader evidence that the *fast* ground-truth
//! engine (fluid) agrees with the *faithful* one (per-segment packet DES)
//! where both can run. This module produces that table — referenced as
//! "figV" in EXPERIMENTS.md.

use packetsim::FlowSpec;

use crate::figures::Lab;
use crate::workload::{draw_pairs, Topology};

/// One row of the validation table.
#[derive(Clone, Debug)]
pub struct ValidationPoint {
    /// Transfer size in bytes.
    pub size: f64,
    /// Median duration from the per-segment engine, seconds.
    pub packet_s: f64,
    /// Median duration from the fluid engine, seconds.
    pub fluid_s: f64,
    /// fluid / packet ratio.
    pub ratio: f64,
}

/// Runs sagittaire 1→10 through both engines over the small/medium sizes
/// (per-segment simulation of the 10 GB points would take hours — the
/// exact trade-off the paper describes for packet-level simulators).
pub fn run_validation(lab: &Lab, seed: u64) -> Vec<ValidationPoint> {
    let sizes = [1e5, 3.59e5, 1.29e6, 4.64e6, 1.67e7];
    let pairs = draw_pairs(&lab.api, &Topology::Cluster("sagittaire".into()), 1, 10, seed);
    let tb = lab.tnet.testbed(lab.testbed_config.clone());
    sizes
        .iter()
        .map(|&size| {
            let flows: Vec<FlowSpec> = pairs
                .iter()
                .map(|p| FlowSpec {
                    src: lab.tnet.network.node_by_name(&p.src).expect("host"),
                    dst: lab.tnet.network.node_by_name(&p.dst).expect("host"),
                    bytes: size,
                    start: 0.0,
                })
                .collect();
            let packet: Vec<f64> =
                tb.measure_packet_level(&flows, seed).iter().map(|m| m.duration).collect();
            let fluid: Vec<f64> = tb.measure(&flows, seed).iter().map(|m| m.duration).collect();
            let packet_s = crate::stats::median(&packet).expect("samples");
            let fluid_s = crate::stats::median(&fluid).expect("samples");
            ValidationPoint { size, packet_s, fluid_s, ratio: fluid_s / packet_s }
        })
        .collect()
}

/// ASCII rendering of the validation table.
pub fn render_validation(points: &[ValidationPoint]) -> String {
    let mut out = String::from(
        "figV — ground-truth engine agreement (sagittaire CLUSTER 1→10)\n\
         per-segment TCP DES vs RTT-round fluid TCP, median durations\n\n",
    );
    out.push_str(&format!(
        "{:>10} | {:>12} {:>12} {:>8}\n",
        "size(B)", "packet(s)", "fluid(s)", "ratio"
    ));
    out.push_str(&"-".repeat(50));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:>10.2e} | {:>12.5} {:>12.5} {:>8.3}\n",
            p.size, p.packet_s, p.fluid_s, p.ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_within_factor_two() {
        let lab = Lab::new();
        let points = run_validation(&lab, 1);
        assert_eq!(points.len(), 5);
        for p in &points {
            assert!(
                (0.5..=2.0).contains(&p.ratio),
                "size {}: fluid/packet ratio {} out of bounds",
                p.size,
                p.ratio
            );
        }
        let text = render_validation(&points);
        assert!(text.contains("figV"));
    }
}
