//! The per-figure experiment runner (§V).
//!
//! Each figure of the paper is a (topology, n_sources, n_destinations)
//! triple swept over ten transfer sizes, ten repetitions per point. Every
//! repetition draws fresh endpoint sets, runs the *measured* side on the
//! ground-truth testbed (fluid TCP over the true topology, with host
//! overheads and noise) and the *predicted* side through PNFS over the
//! `g5k_test` platform model, and records the per-transfer error
//! `log2(prediction) − log2(measure)`.

use std::sync::Arc;

use g5k::packetsim_conv::TestbedNet;
use g5k::{synth, to_packetsim, to_simflow, Flavor, RefApi};
use packetsim::testbed::TestbedConfig;
use packetsim::FlowSpec;
use pilgrim_core::{Pnfs, TransferRequest};
use simflow::{NetworkConfig, Platform};

use crate::stats::{box_stats, log2_error, median, BoxStats};
use crate::workload::{draw_pairs, sizes, FlowPair, Topology};

/// Everything the experiments share: the reference description, the
/// predictor service and the ground-truth testbed.
pub struct Lab {
    /// The synthetic Grid'5000 slice.
    pub api: RefApi,
    /// The `g5k_test` predictor platform (kept for direct access).
    pub platform: Arc<Platform>,
    /// PNFS with `g5k_test` and `g5k_cabinets` registered.
    pub pnfs: Pnfs,
    /// The ground-truth network + overheads.
    pub tnet: TestbedNet,
    /// Testbed configuration (TCP + fluid parameters).
    pub testbed_config: TestbedConfig,
}

impl Lab {
    /// Builds the standard lab used by every figure.
    pub fn new() -> Self {
        let api = synth::standard();
        let platform = Arc::new(to_simflow(&api, Flavor::G5kTest));
        let mut pnfs = Pnfs::new(NetworkConfig::default());
        pnfs.register_platform("g5k_test", to_simflow(&api, Flavor::G5kTest));
        pnfs.register_platform("g5k_cabinets", to_simflow(&api, Flavor::G5kCabinets));
        let tnet = to_packetsim(&api);
        Lab { api, platform, pnfs, tnet, testbed_config: TestbedConfig::default() }
    }

    /// Measured durations of simultaneously-started transfers (seconds).
    pub fn measure(&self, pairs: &[FlowPair], size: f64, seed: u64) -> Vec<f64> {
        let tb = self.tnet.testbed(self.testbed_config.clone());
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .map(|p| FlowSpec {
                src: self.tnet.network.node_by_name(&p.src).expect("host in testbed"),
                dst: self.tnet.network.node_by_name(&p.dst).expect("host in testbed"),
                bytes: size,
                start: 0.0,
            })
            .collect();
        tb.measure(&flows, seed).iter().map(|m| m.duration).collect()
    }

    /// PNFS predictions for the same transfers (seconds).
    pub fn predict(&self, pairs: &[FlowPair], size: f64, platform: &str) -> Vec<f64> {
        let reqs: Vec<TransferRequest> = pairs
            .iter()
            .map(|p| TransferRequest { src: p.src.clone(), dst: p.dst.clone(), size })
            .collect();
        self.pnfs
            .predict(platform, &reqs)
            .expect("prediction over generated platform")
            .into_iter()
            .map(|p| p.duration)
            .collect()
    }
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

/// Declaration of one figure of the paper.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Identifier (`"fig3"` …).
    pub id: &'static str,
    /// Human title, mirroring the paper's captions.
    pub title: &'static str,
    /// Workload topology.
    pub topology: Topology,
    /// Number of distinct sources.
    pub n_src: usize,
    /// Number of distinct destinations.
    pub n_dst: usize,
}

/// The nine evaluation figures (3–11) of the paper.
pub fn figures() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            id: "fig3",
            title: "sagittaire / topology CLUSTER / 1 source / 10 destinations",
            topology: Topology::Cluster("sagittaire".into()),
            n_src: 1,
            n_dst: 10,
        },
        FigureSpec {
            id: "fig4",
            title: "sagittaire / topology CLUSTER / 10 sources / 10 destinations",
            topology: Topology::Cluster("sagittaire".into()),
            n_src: 10,
            n_dst: 10,
        },
        FigureSpec {
            id: "fig5",
            title: "sagittaire / topology CLUSTER / 30 sources / 30 destinations",
            topology: Topology::Cluster("sagittaire".into()),
            n_src: 30,
            n_dst: 30,
        },
        FigureSpec {
            id: "fig6",
            title: "graphene / topology CLUSTER / 1 source / 10 destinations",
            topology: Topology::Cluster("graphene".into()),
            n_src: 1,
            n_dst: 10,
        },
        FigureSpec {
            id: "fig7",
            title: "graphene / topology CLUSTER / 10 sources / 10 destinations",
            topology: Topology::Cluster("graphene".into()),
            n_src: 10,
            n_dst: 10,
        },
        FigureSpec {
            id: "fig8",
            title: "graphene / topology CLUSTER / 30 sources / 30 destinations",
            topology: Topology::Cluster("graphene".into()),
            n_src: 30,
            n_dst: 30,
        },
        FigureSpec {
            id: "fig9",
            title: "graphene / topology CLUSTER / 50 sources / 50 destinations",
            topology: Topology::Cluster("graphene".into()),
            n_src: 50,
            n_dst: 50,
        },
        FigureSpec {
            id: "fig10",
            title: "topology GRID_MULTI / 10 sources / 30 destinations",
            topology: Topology::GridMulti,
            n_src: 10,
            n_dst: 30,
        },
        FigureSpec {
            id: "fig11",
            title: "topology GRID_MULTI / 60 sources / 60 destinations",
            topology: Topology::GridMulti,
            n_src: 60,
            n_dst: 60,
        },
    ]
}

/// Looks a figure spec up by id.
pub fn figure(id: &str) -> Option<FigureSpec> {
    figures().into_iter().find(|f| f.id == id)
}

/// One size point of a figure.
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Transfer size in bytes.
    pub size: f64,
    /// Box summary of the per-transfer errors.
    pub err: BoxStats,
    /// Median measured duration (the right axis of the paper's plots).
    pub median_measured: f64,
    /// Median predicted duration.
    pub median_predicted: f64,
    /// Number of error samples.
    pub n: usize,
}

/// Results of one figure.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// The figure declaration.
    pub spec: FigureSpec,
    /// One point per transfer size.
    pub points: Vec<SizePoint>,
    /// Every raw `(size, error)` sample, for the pooled summary.
    pub all_errors: Vec<(f64, f64)>,
}

/// Runs one figure: `reps` repetitions per size, fresh endpoint draws and
/// noise seeds each repetition. Repetitions run in parallel.
pub fn run_figure(lab: &Lab, spec: &FigureSpec, reps: usize, base_seed: u64) -> FigureData {
    let all_sizes = sizes();
    let mut points = Vec::with_capacity(all_sizes.len());
    let mut all_errors = Vec::new();

    for (si, &size) in all_sizes.iter().enumerate() {
        // one task per repetition, joined below
        let samples: Vec<(Vec<f64>, Vec<f64>)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..reps)
                .map(|rep| {
                    let spec = spec.clone();
                    scope.spawn(move |_| {
                        let seed = base_seed
                            ^ (si as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ (rep as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        let pairs =
                            draw_pairs(&lab.api, &spec.topology, spec.n_src, spec.n_dst, seed);
                        let measured = lab.measure(&pairs, size, seed);
                        let predicted = lab.predict(&pairs, size, "g5k_test");
                        (measured, predicted)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("repetition")).collect()
        })
        .expect("scope");

        let mut errors = Vec::new();
        let mut measured_all = Vec::new();
        let mut predicted_all = Vec::new();
        for (measured, predicted) in samples {
            for (m, p) in measured.iter().zip(&predicted) {
                errors.push(log2_error(*p, *m));
            }
            measured_all.extend(measured);
            predicted_all.extend(predicted);
        }
        all_errors.extend(errors.iter().map(|e| (size, *e)));
        points.push(SizePoint {
            size,
            err: box_stats(&errors).expect("≥1 sample"),
            median_measured: median(&measured_all).expect("≥1 sample"),
            median_predicted: median(&predicted_all).expect("≥1 sample"),
            n: errors.len(),
        });
    }

    FigureData { spec: spec.clone(), points, all_errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_cover_the_paper() {
        let figs = figures();
        assert_eq!(figs.len(), 9);
        assert!(figure("fig3").is_some());
        assert!(figure("fig11").is_some());
        assert!(figure("fig99").is_none());
        // graphene 50×50 is the biggest cluster experiment
        let f9 = figure("fig9").unwrap();
        assert_eq!((f9.n_src, f9.n_dst), (50, 50));
    }

    #[test]
    fn lab_predicts_and_measures_consistently() {
        let lab = Lab::new();
        let pairs = draw_pairs(
            &lab.api,
            &Topology::Cluster("sagittaire".into()),
            2,
            2,
            1,
        );
        let m = lab.measure(&pairs, 1e8, 1);
        let p = lab.predict(&pairs, 1e8, "g5k_test");
        assert_eq!(m.len(), 2);
        assert_eq!(p.len(), 2);
        for (mm, pp) in m.iter().zip(&p) {
            assert!(*mm > 0.0 && *pp > 0.0);
            // at 100 MB both sides are within a factor 4 on sagittaire
            assert!((pp / mm).log2().abs() < 2.0, "m={mm} p={pp}");
        }
    }
}
