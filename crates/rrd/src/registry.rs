//! A path-addressed collection of RRDs, mirroring the tree the paper's
//! metrology service exposes over HTTP:
//! `/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd`.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::codec;
use crate::db::Database;

/// A registry of named round-robin databases.
///
/// Keys are `/`-separated logical paths (tool/site/host/metric). The
/// registry itself is single-threaded; services wrap it in a lock.
#[derive(Default, Debug)]
pub struct Registry {
    dbs: BTreeMap<String, Database>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Normalizes a path: strips leading/trailing slashes.
    fn norm(path: &str) -> String {
        path.trim_matches('/').to_string()
    }

    /// Inserts (or replaces) a database under `path`.
    pub fn insert(&mut self, path: &str, db: Database) {
        self.dbs.insert(Self::norm(path), db);
    }

    /// Read access to the database at `path`.
    pub fn get(&self, path: &str) -> Option<&Database> {
        self.dbs.get(&Self::norm(path))
    }

    /// Write access to the database at `path`.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut Database> {
        self.dbs.get_mut(&Self::norm(path))
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.dbs.len()
    }

    /// True if no database is registered.
    pub fn is_empty(&self) -> bool {
        self.dbs.is_empty()
    }

    /// All paths under a prefix (`""` lists everything).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let p = Self::norm(prefix);
        self.dbs
            .keys()
            .filter(|k| p.is_empty() || k.starts_with(&p))
            .cloned()
            .collect()
    }

    /// Persists every database under `dir`, one file per path (slashes
    /// become subdirectories).
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        for (path, db) in &self.dbs {
            let file = dir.join(path);
            if let Some(parent) = file.parent() {
                std::fs::create_dir_all(parent)?;
            }
            let mut f = std::io::BufWriter::new(std::fs::File::create(&file)?);
            f.write_all(&codec::encode(db))?;
            f.flush()?;
        }
        Ok(())
    }

    /// Loads every `.rrd`-suffixed file under `dir` (recursively) into a
    /// fresh registry. Files that fail to decode are reported by path.
    pub fn load_dir(dir: &Path) -> std::io::Result<(Registry, Vec<String>)> {
        let mut reg = Registry::new();
        let mut failures = Vec::new();
        fn walk(
            base: &Path,
            dir: &Path,
            reg: &mut Registry,
            failures: &mut Vec<String>,
        ) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    walk(base, &path, reg, failures)?;
                } else {
                    let mut buf = Vec::new();
                    std::fs::File::open(&path)?.read_to_end(&mut buf)?;
                    let rel = path
                        .strip_prefix(base)
                        .expect("walk stays under base")
                        .to_string_lossy()
                        .replace('\\', "/");
                    match codec::decode(&buf) {
                        Ok(db) => reg.insert(&rel, db),
                        Err(_) => failures.push(rel),
                    }
                }
            }
            Ok(())
        }
        walk(dir, dir, &mut reg, &mut failures)?;
        Ok((reg, failures))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{ArchiveSpec, Cf, DsKind};

    fn db() -> Database {
        let mut db = Database::new(
            15,
            DsKind::Gauge,
            120,
            &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 32 }],
        );
        db.update(0, 168.9).unwrap();
        for k in 1..=10 {
            db.update(k * 15, 168.8).unwrap();
        }
        db
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut reg = Registry::new();
        reg.insert("ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd", db());
        assert!(reg
            .get("/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd")
            .is_some());
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn list_by_prefix() {
        let mut reg = Registry::new();
        reg.insert("ganglia/Lyon/a/pdu.rrd", db());
        reg.insert("ganglia/Lyon/b/pdu.rrd", db());
        reg.insert("munin/Nancy/c/load.rrd", db());
        assert_eq!(reg.list("ganglia").len(), 2);
        assert_eq!(reg.list("munin").len(), 1);
        assert_eq!(reg.list("").len(), 3);
    }

    #[test]
    fn save_and_load_directory() {
        let tmp = std::env::temp_dir().join(format!("rrdreg-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();

        let mut reg = Registry::new();
        reg.insert("ganglia/Lyon/host-1/pdu.rrd", db());
        reg.insert("ganglia/Nancy/host-2/pdu.rrd", db());
        reg.save_dir(&tmp).unwrap();

        let (back, failures) = Registry::load_dir(&tmp).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(back.len(), 2);
        let orig = reg.get("ganglia/Lyon/host-1/pdu.rrd").unwrap();
        let got = back.get("ganglia/Lyon/host-1/pdu.rrd").unwrap();
        assert_eq!(orig.fetch_best(0, 200).len(), got.fetch_best(0, 200).len());

        std::fs::remove_dir_all(&tmp).unwrap();
    }

    #[test]
    fn corrupt_files_are_reported_not_fatal() {
        let tmp = std::env::temp_dir().join(format!("rrdreg-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(tmp.join("x")).unwrap();
        std::fs::write(tmp.join("x/bad.rrd"), b"garbage").unwrap();

        let (reg, failures) = Registry::load_dir(&tmp).unwrap();
        assert!(reg.is_empty());
        assert_eq!(failures, vec!["x/bad.rrd".to_string()]);

        std::fs::remove_dir_all(&tmp).unwrap();
    }
}
