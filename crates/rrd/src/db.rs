//! The round-robin database core: data sources, consolidated archives,
//! rate normalization and best-resolution fetch.
//!
//! Semantics follow rrdtool, which the paper identifies as "the de-facto
//! standard in the sysadmin community for time-series storage":
//!
//! * updates are normalized into *primary data points* (PDPs), one per
//!   `step` seconds, as rates (Counter/Derive) or values (Gauge);
//! * gaps longer than the heartbeat become *unknown* (NaN);
//! * each *round-robin archive* (RRA) consolidates `steps_per_row`
//!   consecutive PDPs with a consolidation function (Average/Min/Max/
//!   Last) into a fixed-size ring of rows — old data ages into coarser
//!   archives instead of growing the file.
//!
//! The part the paper adds on top of rrdtool is the *fetch* semantics of
//! its metrology service: "for given lower and upper bound timestamps, the
//! service will answer with all metric values between these bounds,
//! automatically gathering the most accurate data from the different
//! round-robin archives available" — implemented here as
//! [`Database::fetch_best`], which stitches fine recent archives with
//! coarse old ones.

/// How a data source interprets update values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DsKind {
    /// Instantaneous reading (temperature, power draw…): stored as-is.
    Gauge,
    /// Monotonic counter (bytes on an interface): stored as the rate
    /// `Δvalue/Δt`; decreases are treated as unknown (counter reset).
    Counter,
    /// Like Counter but decreases are legal (signed rate).
    Derive,
}

/// Consolidation function of an archive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cf {
    /// Mean of the consolidated PDPs.
    Average,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Last PDP of the window.
    Last,
}

/// Archive (RRA) declaration.
#[derive(Clone, Copy, Debug)]
pub struct ArchiveSpec {
    /// Consolidation function.
    pub cf: Cf,
    /// PDPs consolidated per stored row.
    pub steps_per_row: u32,
    /// Ring capacity in rows.
    pub rows: u32,
}

/// One archive with its ring and consolidation state.
#[derive(Clone, Debug)]
pub(crate) struct Archive {
    pub(crate) spec: ArchiveSpec,
    /// Ring of consolidated values; index 0 is the *oldest* retained row
    /// once the ring has wrapped (we keep a rolling Vec with head index).
    pub(crate) ring: Vec<f64>,
    /// Index of the slot the *next* row will be written to.
    pub(crate) head: usize,
    /// Number of valid rows stored so far (saturates at capacity).
    pub(crate) filled: usize,
    /// End timestamp of the most recent row, or `None` before any row.
    pub(crate) last_row_end: Option<i64>,
    /// Consolidation accumulator over the current window.
    pub(crate) acc: f64,
    /// PDPs accumulated in the current window.
    pub(crate) acc_count: u32,
}

impl Archive {
    fn new(spec: ArchiveSpec) -> Self {
        Archive {
            spec,
            ring: vec![f64::NAN; spec.rows as usize],
            head: 0,
            filled: 0,
            last_row_end: None,
            acc: f64::NAN,
            acc_count: 0,
        }
    }

    /// Row duration in seconds for a database step.
    fn row_span(&self, step: u64) -> i64 {
        (self.spec.steps_per_row as i64) * (step as i64)
    }

    /// Feeds one PDP (ending at `pdp_end`).
    fn push_pdp(&mut self, pdp_end: i64, value: f64, step: u64) {
        if self.acc_count == 0 {
            self.acc = value;
        } else if value.is_nan() || self.acc.is_nan() {
            // any unknown PDP poisons Min/Max/Average windows; Last keeps
            // the freshest known value semantics simple: also NaN
            self.acc = f64::NAN;
        } else {
            self.acc = match self.spec.cf {
                Cf::Average => self.acc + value,
                Cf::Min => self.acc.min(value),
                Cf::Max => self.acc.max(value),
                Cf::Last => value,
            };
        }
        self.acc_count += 1;
        if self.acc_count == self.spec.steps_per_row {
            let row = match self.spec.cf {
                Cf::Average => self.acc / self.spec.steps_per_row as f64,
                _ => self.acc,
            };
            self.ring[self.head] = row;
            self.head = (self.head + 1) % self.ring.len();
            self.filled = (self.filled + 1).min(self.ring.len());
            self.last_row_end = Some(pdp_end);
            self.acc = f64::NAN;
            self.acc_count = 0;
        }
        let _ = step;
    }

    /// End timestamp of the oldest retained row.
    pub(crate) fn oldest_row_end(&self, step: u64) -> Option<i64> {
        let last = self.last_row_end?;
        Some(last - (self.filled as i64 - 1) * self.row_span(step))
    }

    /// The consolidated value of the row ending at `row_end` (must align).
    fn row_at(&self, row_end: i64, step: u64) -> Option<f64> {
        let last = self.last_row_end?;
        let span = self.row_span(step);
        if row_end > last || (last - row_end) % span != 0 {
            return None;
        }
        let back = ((last - row_end) / span) as usize;
        if back >= self.filled {
            return None;
        }
        let idx = (self.head + self.ring.len() - 1 - back) % self.ring.len();
        Some(self.ring[idx])
    }
}

/// A single-data-source round-robin database.
#[derive(Clone, Debug)]
pub struct Database {
    pub(crate) step: u64,
    pub(crate) kind: DsKind,
    /// Maximum silence between updates before data is unknown, seconds.
    pub(crate) heartbeat: u64,
    pub(crate) archives: Vec<Archive>,
    /// Timestamp of the last processed update.
    pub(crate) last_update: Option<i64>,
    /// Raw value of the last update (Counter/Derive deltas).
    pub(crate) last_raw: f64,
    /// Accumulator for the PDP in progress: sum of value×seconds.
    pub(crate) pdp_sum: f64,
    /// Seconds of the current PDP already covered by known data.
    pub(crate) pdp_known: f64,
}

impl Database {
    /// Creates a database.
    ///
    /// # Panics
    /// Panics if `step` is zero or no archive is declared.
    pub fn new(step: u64, kind: DsKind, heartbeat: u64, archives: &[ArchiveSpec]) -> Self {
        assert!(step > 0, "step must be positive");
        assert!(!archives.is_empty(), "at least one archive required");
        assert!(
            archives.iter().all(|a| a.steps_per_row > 0 && a.rows > 0),
            "archive geometry must be positive"
        );
        Database {
            step,
            kind,
            heartbeat,
            archives: archives.iter().map(|s| Archive::new(*s)).collect(),
            last_update: None,
            last_raw: f64::NAN,
            pdp_sum: 0.0,
            pdp_known: 0.0,
        }
    }

    /// The database step in seconds.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Declared archives.
    pub fn archive_specs(&self) -> Vec<ArchiveSpec> {
        self.archives.iter().map(|a| a.spec).collect()
    }

    /// Feeds one measurement taken at `ts` (unix seconds, strictly
    /// increasing across calls).
    ///
    /// Returns `Err` if `ts` does not advance.
    pub fn update(&mut self, ts: i64, value: f64) -> Result<(), String> {
        let prev = match self.last_update {
            None => {
                // first update only seeds the state
                self.last_update = Some(ts);
                self.last_raw = value;
                return Ok(());
            }
            Some(p) => p,
        };
        if ts <= prev {
            return Err(format!("update timestamp {ts} does not advance past {prev}"));
        }
        let dt = (ts - prev) as f64;

        // rate/value of the elapsed interval
        let pdp_value = if dt > self.heartbeat as f64 {
            f64::NAN
        } else {
            match self.kind {
                DsKind::Gauge => value,
                DsKind::Counter => {
                    let delta = value - self.last_raw;
                    if delta < 0.0 {
                        f64::NAN // counter reset
                    } else {
                        delta / dt
                    }
                }
                DsKind::Derive => (value - self.last_raw) / dt,
            }
        };

        // walk the PDP boundaries crossed by [prev, ts]
        let step = self.step as i64;
        let mut cursor = prev;
        while cursor < ts {
            let boundary = (cursor / step + 1) * step;
            let seg_end = boundary.min(ts);
            let seg = (seg_end - cursor) as f64;
            if !pdp_value.is_nan() {
                self.pdp_sum += pdp_value * seg;
                self.pdp_known += seg;
            }
            if seg_end == boundary {
                // PDP complete at `boundary`
                let pdp = if self.pdp_known >= self.step as f64 * 0.5 {
                    self.pdp_sum / self.pdp_known
                } else {
                    f64::NAN
                };
                for a in &mut self.archives {
                    a.push_pdp(boundary, pdp, self.step);
                }
                self.pdp_sum = 0.0;
                self.pdp_known = 0.0;
            }
            cursor = seg_end;
        }

        self.last_update = Some(ts);
        self.last_raw = value;
        Ok(())
    }

    /// Fetches consolidated points from a *single* archive (by index),
    /// rrdtool-style: all rows whose end timestamp lies in `(begin, end]`
    /// — the paper's one-minute example window returns exactly four 15 s
    /// samples.
    pub fn fetch_archive(&self, archive: usize, begin: i64, end: i64) -> Vec<(i64, f64)> {
        let a = &self.archives[archive];
        let span = a.row_span(self.step);
        let (Some(last), Some(oldest)) = (a.last_row_end, a.oldest_row_end(self.step)) else {
            return Vec::new();
        };
        let lo = (begin + 1).max(oldest);
        let hi = end.min(last);
        if lo > hi {
            return Vec::new();
        }
        // first row end ≥ lo, aligned with the archive's grid
        let offset = (last - lo) / span;
        let mut t = last - offset * span;
        if t < lo {
            t += span;
        }
        let mut out = Vec::new();
        while t <= hi {
            if let Some(v) = a.row_at(t, self.step) {
                out.push((t, v));
            }
            t += span;
        }
        out
    }

    /// The paper's metrology fetch: all points in `[begin, end]`, taking
    /// each sub-range from the finest archive that still retains it.
    pub fn fetch_best(&self, begin: i64, end: i64) -> Vec<(i64, f64)> {
        // archives sorted fine → coarse
        let mut order: Vec<usize> = (0..self.archives.len()).collect();
        order.sort_by_key(|&i| self.archives[i].spec.steps_per_row);

        let mut out: Vec<(i64, f64)> = Vec::new();
        let mut cursor = end;
        for &i in &order {
            if cursor < begin {
                break;
            }
            let a = &self.archives[i];
            let Some(oldest) = a.oldest_row_end(self.step) else { continue };
            // fetch_archive excludes its lower bound, so step one tick
            // below `oldest` to keep the archive's oldest row eligible
            let lo = begin.max(oldest - 1);
            let mut part = self.fetch_archive(i, lo, cursor);
            if part.is_empty() {
                continue;
            }
            part.append(&mut out);
            out = part;
            // older data must come from coarser archives
            cursor = oldest - 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge_db() -> Database {
        Database::new(
            10,
            DsKind::Gauge,
            60,
            &[
                ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 6 },
                ArchiveSpec { cf: Cf::Average, steps_per_row: 6, rows: 10 },
            ],
        )
    }

    #[test]
    fn gauge_pdp_consolidation() {
        let mut db = gauge_db();
        db.update(0, 100.0).unwrap();
        for k in 1..=12 {
            db.update(k * 10, 100.0 + k as f64).unwrap();
        }
        let pts = db.fetch_archive(0, 0, 130);
        assert_eq!(pts.len(), 6, "{pts:?}"); // fine ring holds 6 rows
        // rows are averages over each 10 s window, roughly increasing
        assert!(pts.windows(2).all(|w| w[1].1 > w[0].1), "{pts:?}");
    }

    #[test]
    fn counter_becomes_rate() {
        let mut db = Database::new(
            10,
            DsKind::Counter,
            60,
            &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 16 }],
        );
        db.update(0, 0.0).unwrap();
        // +1000 bytes every 10 s → 100 B/s
        for k in 1..=5 {
            db.update(k * 10, (k * 1000) as f64).unwrap();
        }
        let pts = db.fetch_archive(0, 0, 60);
        assert!(!pts.is_empty());
        for (_, v) in pts {
            assert!((v - 100.0).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn counter_reset_is_unknown() {
        let mut db = Database::new(
            10,
            DsKind::Counter,
            60,
            &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 16 }],
        );
        db.update(0, 5000.0).unwrap();
        db.update(10, 100.0).unwrap(); // reset
        let pts = db.fetch_archive(0, 0, 20);
        assert!(pts.iter().any(|(_, v)| v.is_nan()), "{pts:?}");
    }

    #[test]
    fn heartbeat_gap_is_unknown() {
        let mut db = gauge_db();
        db.update(0, 1.0).unwrap();
        db.update(10, 1.0).unwrap();
        db.update(200, 1.0).unwrap(); // 190 s silence > 60 s heartbeat
        let pts = db.fetch_archive(0, 10, 200);
        assert!(pts.iter().any(|(_, v)| v.is_nan()), "{pts:?}");
    }

    #[test]
    fn derive_allows_negative_rates() {
        let mut db = Database::new(
            10,
            DsKind::Derive,
            60,
            &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 8 }],
        );
        db.update(0, 1000.0).unwrap();
        db.update(10, 900.0).unwrap();
        let pts = db.fetch_archive(0, 0, 10);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].1 - (-10.0)).abs() < 1e-9, "{pts:?}");
    }

    #[test]
    fn min_max_last_consolidation() {
        for (cf, expect) in [(Cf::Min, 1.0), (Cf::Max, 3.0), (Cf::Last, 2.0)] {
            let mut db = Database::new(
                10,
                DsKind::Gauge,
                60,
                &[ArchiveSpec { cf, steps_per_row: 3, rows: 4 }],
            );
            db.update(0, 0.0).unwrap();
            // PDPs: (0,10]≈1, (10,20]≈3, (20,30]≈2
            db.update(10, 1.0).unwrap();
            db.update(20, 3.0).unwrap();
            db.update(30, 2.0).unwrap();
            let pts = db.fetch_archive(0, 0, 30);
            assert_eq!(pts.len(), 1, "{cf:?}: {pts:?}");
            assert!((pts[0].1 - expect).abs() < 1e-9, "{cf:?}: {pts:?}");
        }
    }

    #[test]
    fn ring_wraps_and_forgets() {
        let mut db = Database::new(
            10,
            DsKind::Gauge,
            60,
            &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 3 }],
        );
        db.update(0, 0.0).unwrap();
        for k in 1..=10 {
            db.update(k * 10, k as f64).unwrap();
        }
        let pts = db.fetch_archive(0, 0, 1000);
        assert_eq!(pts.len(), 3, "ring keeps 3 rows: {pts:?}");
        assert_eq!(pts.last().unwrap().0, 100, "newest row end");
        assert_eq!(pts[0].0, 80, "oldest retained row end");
    }

    #[test]
    fn fetch_best_stitches_archives() {
        let mut db = gauge_db(); // fine: 6×10 s, coarse: 10×60 s
        db.update(0, 0.0).unwrap();
        for k in 1..=60 {
            db.update(k * 10, k as f64).unwrap();
        }
        // fine archive covers (540, 600]; coarse covers up to 600 s back
        let pts = db.fetch_best(0, 600);
        assert!(!pts.is_empty());
        // strictly increasing timestamps, no duplicates
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0), "{pts:?}");
        // recent points at 10 s spacing, old at 60 s spacing
        let last_gap = pts[pts.len() - 1].0 - pts[pts.len() - 2].0;
        let first_gap = pts[1].0 - pts[0].0;
        assert_eq!(last_gap, 10, "{pts:?}");
        assert_eq!(first_gap, 60, "{pts:?}");
    }

    #[test]
    fn fetch_outside_data_is_empty() {
        let mut db = gauge_db();
        db.update(0, 1.0).unwrap();
        db.update(10, 1.0).unwrap();
        assert!(db.fetch_best(1000, 2000).is_empty());
        assert!(db.fetch_archive(0, 1000, 2000).is_empty());
    }

    #[test]
    fn non_advancing_update_is_rejected() {
        let mut db = gauge_db();
        db.update(100, 1.0).unwrap();
        assert!(db.update(100, 2.0).is_err());
        assert!(db.update(50, 2.0).is_err());
    }

    #[test]
    fn paper_example_shape() {
        // the paper's pdu.rrd example: 15 s sampling of a power metric,
        // four points in a one-minute window
        let mut db = Database::new(
            15,
            DsKind::Gauge,
            120,
            &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 240 }],
        );
        let t0 = 1_336_111_200i64;
        db.update(t0 - 15, 168.9).unwrap();
        for k in 0..8 {
            db.update(t0 + k * 15, 168.8 + 0.1 * (k % 3) as f64).unwrap();
        }
        let pts = db.fetch_best(t0, t0 + 60);
        assert_eq!(pts.len(), 4, "one minute at 15 s steps: {pts:?}");
        for (_, v) in pts {
            assert!((v - 168.9).abs() < 0.5);
        }
    }
}
