//! Minimal civil-time conversions for the metrology API.
//!
//! The paper's example queries pass timestamps as
//! `begin=2012-05-04 08:00:00`; this module converts such strings to and
//! from unix seconds (UTC, proleptic Gregorian, no leap seconds) using
//! Howard Hinnant's days-from-civil algorithm. No external crate needed.

/// Converts a civil date to days since 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // March=0
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Converts days since the epoch back to a civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parses `"YYYY-MM-DD HH:MM:SS"` (or with `T` separator, or `"%20"` as
/// produced by URL encoding) into unix seconds.
pub fn parse_datetime(s: &str) -> Option<i64> {
    let s = s.trim().replace("%20", " ").replace('T', " ");
    let (date, time) = s.split_once(' ')?;
    let mut dp = date.split('-');
    let y: i64 = dp.next()?.parse().ok()?;
    let m: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut tp = time.split(':');
    let hh: i64 = tp.next()?.parse().ok()?;
    let mm: i64 = tp.next()?.parse().ok()?;
    let ss: i64 = tp.next()?.parse().ok()?;
    if tp.next().is_some() || !(0..24).contains(&hh) || !(0..60).contains(&mm) || !(0..60).contains(&ss)
    {
        return None;
    }
    Some(days_from_civil(y, m, d) * 86_400 + hh * 3600 + mm * 60 + ss)
}

/// Formats unix seconds as `"YYYY-MM-DD HH:MM:SS"` (UTC).
pub fn format_datetime(ts: i64) -> String {
    let days = ts.div_euclid(86_400);
    let secs = ts.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
        y,
        m,
        d,
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// Parses either a raw unix timestamp or a civil datetime string.
pub fn parse_timestamp(s: &str) -> Option<i64> {
    if let Ok(v) = s.trim().parse::<i64>() {
        return Some(v);
    }
    parse_datetime(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(parse_datetime("1970-01-01 00:00:00"), Some(0));
    }

    #[test]
    fn paper_example_timestamp() {
        // the example answer's first sample is 1336111215 =
        // 2012-05-04 06:00:15 UTC (the paper's 08:00 bound is CEST, UTC+2)
        let t = parse_datetime("2012-05-04 06:00:15").unwrap();
        assert_eq!(t, 1_336_111_215);
    }

    #[test]
    fn round_trip_many_values() {
        for ts in [0i64, 1, 86_399, 86_400, 1_336_111_215, 2_000_000_000, -86_400] {
            let s = format_datetime(ts);
            assert_eq!(parse_datetime(&s), Some(ts), "{s}");
        }
    }

    #[test]
    fn url_encoded_space_is_accepted() {
        assert_eq!(
            parse_datetime("2012-05-04%2008:00:00"),
            parse_datetime("2012-05-04 08:00:00")
        );
    }

    #[test]
    fn t_separator_is_accepted() {
        assert_eq!(
            parse_datetime("2012-05-04T08:00:00"),
            parse_datetime("2012-05-04 08:00:00")
        );
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in ["", "2012-05-04", "08:00:00", "2012-13-04 08:00:00", "2012-05-04 25:00:00", "x y"] {
            assert_eq!(parse_datetime(bad), None, "{bad}");
        }
    }

    #[test]
    fn raw_timestamps_pass_through() {
        assert_eq!(parse_timestamp("1336111215"), Some(1_336_111_215));
        assert_eq!(parse_timestamp("2012-05-04 08:00:00"), parse_datetime("2012-05-04 08:00:00"));
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = parse_datetime("2012-02-29 12:00:00").unwrap();
        assert_eq!(format_datetime(feb29), "2012-02-29 12:00:00");
        assert_eq!(parse_datetime("2011-02-29 00:00:00").map(format_datetime), Some("2011-03-01 00:00:00".into()));
    }
}
