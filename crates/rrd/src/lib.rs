//! # rrd — a round-robin time-series database
//!
//! Pilgrim's first service is "a remote API for accessing RRD files ...
//! hiding the complexities of these files (in particular the multiple
//! precisions and time-spans of round-robin archives per RRD file)". This
//! crate is the reproduction's RRD substrate: the storage semantics of the
//! rrdtool ecosystem (Ganglia/Munin/Cacti write these files) plus the
//! best-resolution stitched fetch the paper's service adds on top.
//!
//! * [`db`] — data sources (Gauge/Counter/Derive), heartbeat
//!   normalization, consolidated round-robin archives, single-archive and
//!   stitched fetch;
//! * [`codec`] — compact binary persistence;
//! * [`registry`] — a path-addressed RRD tree with directory save/load;
//! * [`time`] — the `"YYYY-MM-DD HH:MM:SS"` timestamps of the query API.
//!
//! ```
//! use rrd::{ArchiveSpec, Cf, Database, DsKind};
//!
//! let mut db = Database::new(15, DsKind::Gauge, 120, &[
//!     ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 240 },
//!     ArchiveSpec { cf: Cf::Average, steps_per_row: 8, rows: 720 },
//! ]);
//! db.update(0, 168.9).unwrap();
//! db.update(15, 168.8).unwrap();
//! db.update(30, 168.9).unwrap();
//! let points = db.fetch_best(0, 30);
//! assert_eq!(points.len(), 2);
//! ```

pub mod codec;
pub mod db;
pub mod registry;
pub mod time;

pub use codec::{decode, encode, CodecError};
pub use db::{ArchiveSpec, Cf, Database, DsKind};
pub use registry::Registry;
