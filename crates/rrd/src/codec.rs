//! Binary persistence of round-robin databases.
//!
//! RRD files are the interchange format of the sysadmin tool chain the
//! paper's metrology service wraps (Ganglia, Munin, Cacti write them).
//! This codec is a compact little-endian format — not rrdtool's on-disk
//! layout, but carrying the same information — with a magic/version header
//! so stale files fail loudly.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::db::{Archive, ArchiveSpec, Cf, Database, DsKind};

const MAGIC: &[u8; 4] = b"PRRD";
const VERSION: u16 = 1;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Not a PRRD file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Truncated or corrupt payload.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an RRD file (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported RRD version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt RRD file: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn kind_tag(k: DsKind) -> u8 {
    match k {
        DsKind::Gauge => 0,
        DsKind::Counter => 1,
        DsKind::Derive => 2,
    }
}

fn kind_from(tag: u8) -> Result<DsKind, CodecError> {
    Ok(match tag {
        0 => DsKind::Gauge,
        1 => DsKind::Counter,
        2 => DsKind::Derive,
        _ => return Err(CodecError::Corrupt("ds kind")),
    })
}

fn cf_tag(c: Cf) -> u8 {
    match c {
        Cf::Average => 0,
        Cf::Min => 1,
        Cf::Max => 2,
        Cf::Last => 3,
    }
}

fn cf_from(tag: u8) -> Result<Cf, CodecError> {
    Ok(match tag {
        0 => Cf::Average,
        1 => Cf::Min,
        2 => Cf::Max,
        3 => Cf::Last,
        _ => return Err(CodecError::Corrupt("cf")),
    })
}

/// Serializes a database.
pub fn encode(db: &Database) -> Bytes {
    let mut b = BytesMut::with_capacity(64 + db.archives.iter().map(|a| a.ring.len() * 8 + 64).sum::<usize>());
    b.put_slice(MAGIC);
    b.put_u16_le(VERSION);
    b.put_u64_le(db.step);
    b.put_u8(kind_tag(db.kind));
    b.put_u64_le(db.heartbeat);
    b.put_i64_le(db.last_update.unwrap_or(i64::MIN));
    b.put_f64_le(db.last_raw);
    b.put_f64_le(db.pdp_sum);
    b.put_f64_le(db.pdp_known);
    b.put_u32_le(db.archives.len() as u32);
    for a in &db.archives {
        b.put_u8(cf_tag(a.spec.cf));
        b.put_u32_le(a.spec.steps_per_row);
        b.put_u32_le(a.spec.rows);
        b.put_u64_le(a.head as u64);
        b.put_u64_le(a.filled as u64);
        b.put_i64_le(a.last_row_end.unwrap_or(i64::MIN));
        b.put_f64_le(a.acc);
        b.put_u32_le(a.acc_count);
        for v in &a.ring {
            b.put_f64_le(*v);
        }
    }
    b.freeze()
}

/// Deserializes a database.
pub fn decode(mut buf: &[u8]) -> Result<Database, CodecError> {
    if buf.remaining() < 6 {
        return Err(CodecError::Corrupt("header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    if buf.remaining() < 8 + 1 + 8 + 8 + 8 + 8 + 8 + 4 {
        return Err(CodecError::Corrupt("fixed fields"));
    }
    let step = buf.get_u64_le();
    if step == 0 {
        return Err(CodecError::Corrupt("zero step"));
    }
    let kind = kind_from(buf.get_u8())?;
    let heartbeat = buf.get_u64_le();
    let last_update = match buf.get_i64_le() {
        i64::MIN => None,
        v => Some(v),
    };
    let last_raw = buf.get_f64_le();
    let pdp_sum = buf.get_f64_le();
    let pdp_known = buf.get_f64_le();
    let n_arch = buf.get_u32_le() as usize;
    if n_arch == 0 || n_arch > 64 {
        return Err(CodecError::Corrupt("archive count"));
    }
    let mut archives = Vec::with_capacity(n_arch);
    for _ in 0..n_arch {
        if buf.remaining() < 1 + 4 + 4 + 8 + 8 + 8 + 8 + 4 {
            return Err(CodecError::Corrupt("archive header"));
        }
        let cf = cf_from(buf.get_u8())?;
        let steps_per_row = buf.get_u32_le();
        let rows = buf.get_u32_le();
        if steps_per_row == 0 || rows == 0 {
            return Err(CodecError::Corrupt("archive geometry"));
        }
        let head = buf.get_u64_le() as usize;
        let filled = buf.get_u64_le() as usize;
        let last_row_end = match buf.get_i64_le() {
            i64::MIN => None,
            v => Some(v),
        };
        let acc = buf.get_f64_le();
        let acc_count = buf.get_u32_le();
        if buf.remaining() < rows as usize * 8 {
            return Err(CodecError::Corrupt("ring data"));
        }
        if head >= rows as usize && head != 0 {
            return Err(CodecError::Corrupt("head index"));
        }
        if filled > rows as usize {
            return Err(CodecError::Corrupt("filled count"));
        }
        let mut ring = Vec::with_capacity(rows as usize);
        for _ in 0..rows {
            ring.push(buf.get_f64_le());
        }
        archives.push(Archive {
            spec: ArchiveSpec { cf, steps_per_row, rows },
            ring,
            head,
            filled,
            last_row_end,
            acc,
            acc_count,
        });
    }
    Ok(Database {
        step,
        kind,
        heartbeat,
        archives,
        last_update,
        last_raw,
        pdp_sum,
        pdp_known,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{ArchiveSpec, Cf, Database, DsKind};

    fn sample() -> Database {
        let mut db = Database::new(
            10,
            DsKind::Counter,
            60,
            &[
                ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 8 },
                ArchiveSpec { cf: Cf::Max, steps_per_row: 4, rows: 4 },
            ],
        );
        db.update(0, 0.0).unwrap();
        for k in 1..=20 {
            db.update(k * 10, (k * k * 100) as f64).unwrap();
        }
        db
    }

    #[test]
    fn round_trip_preserves_fetch_results() {
        let db = sample();
        let bytes = encode(&db);
        let back = decode(&bytes).unwrap();
        assert_eq!(db.step(), back.step());
        let a = db.fetch_best(0, 500);
        let b = back.fetch_best(0, 500);
        assert_eq!(a.len(), b.len());
        for ((t1, v1), (t2, v2)) in a.iter().zip(&b) {
            assert_eq!(t1, t2);
            assert!((v1 == v2) || (v1.is_nan() && v2.is_nan()));
        }
    }

    #[test]
    fn round_trip_allows_further_updates() {
        let db = sample();
        let mut back = decode(&encode(&db)).unwrap();
        back.update(210, 5e4).unwrap();
        assert!(!back.fetch_best(200, 210).is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode(b"NOPE....").unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&sample());
        for cut in [3usize, 10, 30, bytes.len() - 5] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadVersion(99));
    }
}
