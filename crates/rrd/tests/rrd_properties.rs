//! Property tests of the RRD substrate: fetch semantics, ring arithmetic
//! and codec round trips under random update streams.

use proptest::prelude::*;
use rrd::{decode, encode, ArchiveSpec, Cf, Database, DsKind};

fn arb_db_and_updates() -> impl Strategy<Value = (Database, Vec<(i64, f64)>)> {
    (
        2u64..30,                                  // step
        1u32..5,                                   // fine rows multiplier
        proptest::collection::vec((1i64..40, 0.0f64..1e6), 1..80),
    )
        .prop_map(|(step, spr2, increments)| {
            let db = Database::new(
                step,
                DsKind::Gauge,
                step * 20,
                &[
                    ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 16 },
                    ArchiveSpec { cf: Cf::Average, steps_per_row: spr2 + 1, rows: 16 },
                    ArchiveSpec { cf: Cf::Max, steps_per_row: 4, rows: 8 },
                ],
            );
            // strictly increasing timestamps from random deltas
            let mut t = 0i64;
            let updates: Vec<(i64, f64)> = increments
                .into_iter()
                .map(|(dt, v)| {
                    t += dt;
                    (t, v)
                })
                .collect();
            (db, updates)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// fetch_best returns strictly increasing timestamps inside the
    /// requested window, regardless of archive stitching.
    #[test]
    fn fetch_best_is_ordered_and_bounded(
        (mut db, updates) in arb_db_and_updates(),
        begin in 0i64..500,
        span in 1i64..2000,
    ) {
        for (t, v) in &updates {
            db.update(*t, *v).unwrap();
        }
        let end = begin + span;
        let points = db.fetch_best(begin, end);
        for w in points.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "timestamps must increase: {points:?}");
        }
        for (t, _) in &points {
            prop_assert!(*t > begin && *t <= end, "{t} outside ({begin}, {end}]");
        }
    }

    /// Known (non-NaN) values returned by fetch never exceed the range of
    /// fed values (Average/Min/Max are all contractive).
    #[test]
    fn consolidation_stays_in_range(
        (mut db, updates) in arb_db_and_updates(),
    ) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (t, v) in &updates {
            db.update(*t, *v).unwrap();
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        if updates.len() < 2 {
            return Ok(());
        }
        let last = updates.last().unwrap().0;
        for (_, v) in db.fetch_best(0, last) {
            if v.is_finite() {
                prop_assert!(
                    v >= lo - 1e-9 && v <= hi + 1e-9,
                    "consolidated {v} outside fed range [{lo}, {hi}]"
                );
            }
        }
    }

    /// encode/decode is lossless with respect to every subsequent fetch.
    #[test]
    fn codec_round_trip_preserves_fetches(
        (mut db, updates) in arb_db_and_updates(),
    ) {
        for (t, v) in &updates {
            db.update(*t, *v).unwrap();
        }
        let back = decode(&encode(&db)).unwrap();
        let last = updates.last().map(|(t, _)| *t).unwrap_or(0);
        let a = db.fetch_best(0, last + 100);
        let b = back.fetch_best(0, last + 100);
        prop_assert_eq!(a.len(), b.len());
        for ((t1, v1), (t2, v2)) in a.iter().zip(&b) {
            prop_assert_eq!(t1, t2);
            prop_assert!(v1 == v2 || (v1.is_nan() && v2.is_nan()));
        }
    }

    /// Corrupting any single byte of an encoded database never panics the
    /// decoder (it may error or produce a decodable-but-different DB).
    #[test]
    fn decoder_never_panics_on_corruption(
        (mut db, updates) in arb_db_and_updates(),
        victim in 0usize..64,
        flip in 1u8..255,
    ) {
        for (t, v) in &updates {
            db.update(*t, *v).unwrap();
        }
        let mut bytes = encode(&db).to_vec();
        let idx = victim % bytes.len();
        bytes[idx] ^= flip;
        let _ = decode(&bytes); // must not panic
    }
}
