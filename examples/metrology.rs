//! The metrology service example (§IV-C.1): serve RRD data over HTTP.
//!
//! Reproduces the paper's example query — the power consumption metric of
//! compute node sagittaire-1 in Lyon, one minute of samples — through an
//! actual HTTP round trip against the Pilgrim REST server.
//!
//! ```text
//! cargo run --release --example metrology
//! ```

use pilgrim_core::http::{http_get, Server};
use pilgrim_core::{Metrology, PilgrimService, Pnfs};
use rrd::{time, ArchiveSpec, Cf, Database, DsKind};
use simflow::NetworkConfig;

fn main() {
    // 1. a Ganglia-style RRD: the pdu (power) gauge, sampled every 15 s,
    //    with a fine archive and a coarse 2-minute archive (the service
    //    stitches them transparently)
    let mut db = Database::new(
        15,
        DsKind::Gauge,
        120,
        &[
            ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 240 },
            ArchiveSpec { cf: Cf::Average, steps_per_row: 8, rows: 720 },
        ],
    );
    // samples around the paper's window (2012-05-04 08:00 CEST = 06:00 UTC)
    let t0 = time::parse_datetime("2012-05-04 05:55:00").unwrap();
    let mut power = 168.9;
    db.update(t0, power).unwrap();
    for k in 1..=40 {
        power += if k % 7 == 0 { -0.15 } else { 0.02 };
        db.update(t0 + k * 15, power).unwrap();
    }

    let metrology = Metrology::new();
    let path = "ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd";
    metrology.insert(path, db);

    // 2. the REST server
    let service = PilgrimService::new(metrology, Pnfs::new(NetworkConfig::default()));
    let server = Server::start("127.0.0.1:0", 2, service.into_handler()).expect("bind");
    let addr = server.addr();
    println!("Pilgrim metrology service listening on http://{addr}");

    // 3. the paper's query (URL-encoded datetime bounds, UTC here)
    let query = format!(
        "/pilgrim/rrd/{path}?begin=2012-05-04%2006:00:00&end=2012-05-04%2006:01:00"
    );
    println!("\n$ curl \"http://{addr}{query}\"");
    let (status, body) = http_get(addr, &query).expect("request");
    assert_eq!(status, 200, "{body}");
    let parsed = jsonlite::Value::parse(&body).expect("json");
    println!("{}", parsed.to_pretty());

    let samples = parsed.as_array().expect("array").len();
    println!(
        "\n{} samples in the one-minute window (the paper's example shows 4 at 15 s steps)",
        samples
    );

    // 4. discovery endpoint
    let (_, listing) = http_get(addr, "/pilgrim/rrds").expect("request");
    println!("registered RRDs: {listing}");

    drop(server);
}
