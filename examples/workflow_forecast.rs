//! Workflow forecasting (§VI): "is it relevant to move 1 TB of data to a
//! more powerful cluster in order to decrease the computing time of 2
//! hours?" — the exact question the paper's introduction opens with,
//! answered by forecasting both workflows.
//!
//! ```text
//! cargo run --release --example workflow_forecast
//! ```

use std::sync::Arc;

use g5k::{synth, to_simflow, Flavor};
use pilgrim_core::workflow::{forecast, TaskKind, Workflow};
use simflow::NetworkConfig;

fn main() {
    let api = synth::standard();
    let platform = Arc::new(to_simflow(&api, Flavor::G5kTest));
    let cfg = NetworkConfig::default();

    let slow = "sagittaire-1.lyon.grid5000.fr"; // 4.8 Gflop/s, 2004-era
    let fast = "graphene-1.nancy.grid5000.fr"; // 10 Gflop/s
    let data = 1e12; // the 1 TB of the paper's example
    let work = 3.456e13; // 2 hours on the slow node

    // Hypothesis A: compute where the data is.
    let mut local = Workflow::new();
    local.add("compute locally", TaskKind::Compute { host: slow.into(), flops: work }, &[]);
    let local_fc = forecast(&platform, cfg, &local).expect("forecast");

    // Hypothesis B: ship 1 TB to the faster cluster, compute, ship back
    // a 10 GB result.
    let mut remote = Workflow::new();
    let mv = remote.add(
        "move 1 TB to nancy",
        TaskKind::Transfer { src: slow.into(), dst: fast.into(), bytes: data },
        &[],
    );
    let c = remote.add(
        "compute on graphene",
        TaskKind::Compute { host: fast.into(), flops: work },
        &[mv],
    );
    remote.add(
        "bring 10 GB of results back",
        TaskKind::Transfer { src: fast.into(), dst: slow.into(), bytes: 1e10 },
        &[c],
    );
    let remote_fc = forecast(&platform, cfg, &remote).expect("forecast");

    println!("Hypothesis A — compute on {slow}:");
    for t in &local_fc.tasks {
        println!("  {:<28} {:>9.1}s → {:>9.1}s", t.name, t.start, t.finish);
    }
    println!("  makespan: {:.1} s ({:.2} h)\n", local_fc.makespan, local_fc.makespan / 3600.0);

    println!("Hypothesis B — move the data to {fast}:");
    for t in &remote_fc.tasks {
        println!("  {:<28} {:>9.1}s → {:>9.1}s", t.name, t.start, t.finish);
    }
    println!(
        "  makespan: {:.1} s ({:.2} h)\n",
        remote_fc.makespan,
        remote_fc.makespan / 3600.0
    );

    let (winner, gain) = if local_fc.makespan < remote_fc.makespan {
        ("stay local", remote_fc.makespan - local_fc.makespan)
    } else {
        ("move the data", local_fc.makespan - remote_fc.makespan)
    };
    println!(
        "verdict: {winner} (saves {gain:.0} s).\n\
         \"If the data transfer will take more than 2 hours, the answer is no.\" — §I"
    );
}
