//! The full Pilgrim REST stack: metrology + PNFS behind one HTTP server,
//! exercised by the paper's two example requests, the §VI
//! hypothesis-selection extension, and a serving-time platform event
//! (degrade a link, watch the forecast change, restore it).
//!
//! ```text
//! cargo run --release --example rest_server
//! ```

use g5k::{synth, to_simflow, Flavor};
use pilgrim_core::http::{http_get, http_post, Server};
use pilgrim_core::{Metrology, PilgrimService, Pnfs};
use rrd::{time, ArchiveSpec, Cf, Database, DsKind};
use simflow::NetworkConfig;

fn main() {
    // metrology side: one power-metric RRD
    let metrology = Metrology::new();
    let mut db = Database::new(
        15,
        DsKind::Gauge,
        120,
        &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 240 }],
    );
    let t0 = time::parse_datetime("2012-05-04 05:59:00").unwrap();
    db.update(t0, 168.92).unwrap();
    for k in 1..=12 {
        db.update(t0 + k * 15, 168.8 + 0.05 * (k % 3) as f64).unwrap();
    }
    metrology.insert("ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd", db);

    // forecast side: both platform flavors
    let api = synth::standard();
    let mut pnfs = Pnfs::new(NetworkConfig::default());
    pnfs.register_platform("g5k_test", to_simflow(&api, Flavor::G5kTest));
    pnfs.register_platform("g5k_cabinets", to_simflow(&api, Flavor::G5kCabinets));

    let service = PilgrimService::new(metrology, pnfs);
    let server = Server::start("127.0.0.1:0", 4, service.into_handler()).expect("bind");
    let addr = server.addr();
    println!("Pilgrim listening on http://{addr}\n");

    let show = |query: &str| {
        println!("$ curl \"http://{addr}{query}\"");
        let (status, body) = http_get(addr, query).expect("request");
        let rendered = jsonlite::Value::parse(&body)
            .map(|v| v.to_pretty())
            .unwrap_or(body);
        println!("HTTP {status}\n{rendered}\n");
    };

    // the paper's metrology example
    show(
        "/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd\
         ?begin=2012-05-04%2006:00:00&end=2012-05-04%2006:01:00",
    );

    // the paper's PNFS example
    show(
        "/pilgrim/predict_transfers/g5k_test\
         ?transfer=capricorne-36.lyon.grid5000.fr,griffon-50.nancy.grid5000.fr,5e8\
         &transfer=capricorne-36.lyon.grid5000.fr,capricorne-1.lyon.grid5000.fr,5e8",
    );

    // the §VI extension: which of two transfer plans finishes first?
    show(
        "/pilgrim/select_fastest/g5k_test\
         ?hypothesis=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,1e9\
         &hypothesis=sagittaire-1.lyon.grid5000.fr,graphene-1.nancy.grid5000.fr,1e9",
    );

    let post = |query: &str| {
        println!("$ curl -X POST \"http://{addr}{query}\"");
        let (status, body) = http_post(addr, query).expect("request");
        let rendered = jsonlite::Value::parse(&body)
            .map(|v| v.to_pretty())
            .unwrap_or(body);
        println!("HTTP {status}\n{rendered}\n");
    };

    // serving-time platform dynamics: the intra-site link degrades to
    // half capacity, the same question gets a slower answer, recovery
    // restores the original forecast exactly
    let intra = "/pilgrim/predict_transfers/g5k_test\
                 ?transfer=capricorne-36.lyon.grid5000.fr,capricorne-1.lyon.grid5000.fr,5e8";
    post("/pilgrim/link_event/g5k_test?link=capricorne-36.lyon.grid5000.fr-nic&factor=0.5");
    show(intra);
    post("/pilgrim/link_event/g5k_test?link=capricorne-36.lyon.grid5000.fr-nic&factor=1");
    show(intra);

    // discovery and engine counters
    show("/pilgrim/platforms");
    show("/pilgrim/stats");

    drop(server);
    println!("server stopped.");
}
