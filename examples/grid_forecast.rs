//! Measured vs predicted, end to end (§V in miniature).
//!
//! Draws a GRID_MULTI workload (cross-site transfers over the three-site
//! slice), runs the *measured* side on the ground-truth testbed and the
//! *predicted* side through PNFS, and prints the paper's per-transfer
//! error metric. This is the whole evaluation pipeline on one scenario.
//!
//! ```text
//! cargo run --release --example grid_forecast
//! ```

use experiments::figures::Lab;
use experiments::stats::log2_error;
use experiments::workload::{draw_pairs, Topology};

fn main() {
    println!("building the lab (predictor platform + ground-truth testbed)…");
    let lab = Lab::new();

    // 10 sources → 10 destinations across Lille/Lyon/Nancy, 774 MB each
    // (one of the paper's "accurate" sizes)
    let pairs = draw_pairs(&lab.api, &Topology::GridMulti, 10, 10, 42);
    let size = 7.74e8;

    println!("\n{} concurrent cross-site transfers of {:.2e} bytes:\n", pairs.len(), size);
    let measured = lab.measure(&pairs, size, 7);
    let predicted = lab.predict(&pairs, size, "g5k_test");

    println!(
        "{:<34} → {:<34} {:>10} {:>10} {:>7}",
        "source", "destination", "measured", "predicted", "error"
    );
    println!("{}", "-".repeat(100));
    let mut errors = Vec::new();
    for ((pair, m), p) in pairs.iter().zip(&measured).zip(&predicted) {
        let err = log2_error(*p, *m);
        errors.push(err);
        println!(
            "{:<34} → {:<34} {:>9.2}s {:>9.2}s {:>+7.2}",
            pair.src, pair.dst, m, p, err
        );
    }

    let median = {
        let mut e: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        e.sort_by(f64::total_cmp);
        e[e.len() / 2]
    };
    println!(
        "\nmedian |log2 error| = {median:.3} — the paper reports 0.149 for sizes > 1.67e7;\n\
         errors this small mean the forecast is good enough to schedule with."
    );

    // the same transfers through the coarser cabinets model, for contrast
    let cab = lab.predict(&pairs, size, "g5k_cabinets");
    let cab_median = {
        let mut e: Vec<f64> = cab
            .iter()
            .zip(&measured)
            .map(|(p, m)| log2_error(*p, *m).abs())
            .collect();
        e.sort_by(f64::total_cmp);
        e[e.len() / 2]
    };
    println!(
        "same request over the coarser 'g5k_cabinets' model: median |error| = {cab_median:.3}\n\
         (the paper: \"all predictions based on g5k_test are better\")"
    );
}
