//! Quickstart: the paper's PNFS example request (§IV-C.2).
//!
//! Predicts two concurrent 500 MB transfers from `capricorne-36` in Lyon —
//! one to `griffon-50` in Nancy (inter-site), one to `capricorne-1` in the
//! same cluster — and prints the JSON answer in the paper's format.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use g5k::{synth, to_simflow, Flavor};
use jsonlite::Value;
use pilgrim_core::{Pnfs, TransferRequest};
use simflow::NetworkConfig;

fn main() {
    // 1. the platform model: synthetic Grid'5000 reference description,
    //    converted the way the paper's Pilgrim scripts convert the real
    //    Reference API (the `g5k_test` flavor)
    let api = synth::standard();
    let mut pnfs = Pnfs::new(NetworkConfig::default());
    pnfs.register_platform("g5k_test", to_simflow(&api, Flavor::G5kTest));

    // 2. the paper's request: two concurrent transfers, both 500 MB
    let requests = vec![
        TransferRequest {
            src: "capricorne-36.lyon.grid5000.fr".into(),
            dst: "griffon-50.nancy.grid5000.fr".into(),
            size: 5e8,
        },
        TransferRequest {
            src: "capricorne-36.lyon.grid5000.fr".into(),
            dst: "capricorne-1.lyon.grid5000.fr".into(),
            size: 5e8,
        },
    ];

    // 3. one flow-level simulation later…
    let t0 = std::time::Instant::now();
    let predictions = pnfs.predict("g5k_test", &requests).expect("prediction");
    let elapsed = t0.elapsed();

    let json = Value::Array(predictions.iter().map(|p| p.to_json()).collect());
    println!("{}", json.to_pretty());
    println!();
    println!(
        "prediction computed in {:.1} ms (the paper: < 0.1 s for 30 transfers)",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "paper's answer for this request: 16.0044 s (inter-site) and 4.76841 s (intra);\n\
         both share capricorne-36's gigabit NIC, and the RTT-aware max-min model\n\
         gives the short-RTT intra-cluster flow the bigger share — same ordering here."
    );
}
