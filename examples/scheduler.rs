//! A replica-selection scheduler built on PNFS — the paper's raison
//! d'être: "Such a service is mandatory for a good resource management
//! system to take scheduling decisions efficiently" (§I), with Stork/Dagda
//! cited as the systems that would consume it.
//!
//! Scenario: input files are replicated across the three sites; a batch of
//! jobs, each pinned to a compute node, must each fetch one file. The
//! scheduler picks, for every job, which replica to pull — either naively
//! (closest by latency, ignoring contention) or by asking PNFS to simulate
//! the *whole* concurrent transfer plan per hypothesis and keeping the
//! fastest (§VI's `select_fastest`). The ground truth then "executes" both
//! plans to show the forecast-driven choice actually finishes sooner.
//!
//! ```text
//! cargo run --release --example scheduler
//! ```

use experiments::figures::Lab;
use packetsim::FlowSpec;
use pilgrim_core::TransferRequest;

/// One job: a compute node that needs one input file.
struct Job {
    node: String,
    file: &'static str,
}

/// A file with replicas on several hosts.
struct FileReplicas {
    name: &'static str,
    bytes: f64,
    replicas: Vec<String>,
}

fn main() {
    println!("building the lab (platform model + ground-truth testbed)…");
    let lab = Lab::new();

    let files = [
        FileReplicas {
            name: "genome.db",
            bytes: 2.78e9,
            replicas: vec![
                "sagittaire-10.lyon.grid5000.fr".into(),
                "chti-5.lille.grid5000.fr".into(),
            ],
        },
        FileReplicas {
            name: "mesh.bin",
            bytes: 7.74e8,
            replicas: vec![
                "capricorne-3.lyon.grid5000.fr".into(),
                "griffon-20.nancy.grid5000.fr".into(),
            ],
        },
        FileReplicas {
            name: "frames.tar",
            bytes: 2.78e9,
            replicas: vec![
                "chicon-2.lille.grid5000.fr".into(),
                "griffon-40.nancy.grid5000.fr".into(),
            ],
        },
    ];
    // six jobs on graphene, two per file — naive placement will pile every
    // same-file job onto the same "closest" replica
    let jobs: Vec<Job> = (0..6)
        .map(|i| Job {
            node: format!("graphene-{}.nancy.grid5000.fr", 10 + i * 7),
            file: files[i % 3].name,
        })
        .collect();

    let file_of = |name: &str| files.iter().find(|f| f.name == name).expect("known file");

    // --- plan A: naive closest-replica (minimum modeled latency), which
    //     ignores that transfers run concurrently
    let naive: Vec<TransferRequest> = jobs
        .iter()
        .map(|job| {
            let f = file_of(job.file);
            let dst = lab.platform.host_by_name(&job.node).expect("node");
            let src = f
                .replicas
                .iter()
                .min_by(|a, b| {
                    let la = lab
                        .platform
                        .route_hosts(lab.platform.host_by_name(a).unwrap(), dst)
                        .unwrap()
                        .latency;
                    let lb = lab
                        .platform
                        .route_hosts(lab.platform.host_by_name(b).unwrap(), dst)
                        .unwrap()
                        .latency;
                    la.total_cmp(&lb)
                })
                .unwrap();
            TransferRequest { src: src.clone(), dst: job.node.clone(), size: f.bytes }
        })
        .collect();

    // --- plan B: forecast-driven — enumerate replica assignments (one
    //     alternative per job flipped) and let PNFS pick the fastest plan
    let mut hypotheses: Vec<Vec<TransferRequest>> = vec![naive.clone()];
    // greedy neighborhood: flip each job to its other replica
    for j in 0..jobs.len() {
        let f = file_of(jobs[j].file);
        for alt in &f.replicas {
            if *alt != naive[j].src {
                let mut plan = hypotheses[0].clone();
                plan[j].src = alt.clone();
                hypotheses.push(plan);
            }
        }
    }
    // and one fully spread plan: job i takes replica i mod r
    let spread: Vec<TransferRequest> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let f = file_of(job.file);
            TransferRequest {
                src: f.replicas[i % f.replicas.len()].clone(),
                dst: job.node.clone(),
                size: f.bytes,
            }
        })
        .collect();
    hypotheses.push(spread);

    let t0 = std::time::Instant::now();
    let selection = lab
        .pnfs
        .select_fastest("g5k_test", &hypotheses)
        .expect("selection");
    println!(
        "\nPNFS evaluated {} placement hypotheses in {:.1} ms ({} pruned without simulation)",
        hypotheses.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        selection.pruned.len()
    );
    println!(
        "chosen plan #{} with forecast makespan {:.1} s (naive plan is #0)",
        selection.best, selection.best_makespan
    );

    // --- execute both plans on the ground truth
    let execute = |plan: &[TransferRequest]| -> f64 {
        let tb = lab.tnet.testbed(Default::default());
        let flows: Vec<FlowSpec> = plan
            .iter()
            .map(|t| FlowSpec {
                src: lab.tnet.network.node_by_name(&t.src).expect("src"),
                dst: lab.tnet.network.node_by_name(&t.dst).expect("dst"),
                bytes: t.size,
                start: 0.0,
            })
            .collect();
        tb.measure(&flows, 42)
            .iter()
            .map(|m| m.duration)
            .fold(0.0, f64::max)
    };

    // --- export a zoomable timeline of the winning plan: re-simulate it
    //     traced and dump a Chrome trace-event file (open in
    //     about:tracing or ui.perfetto.dev)
    {
        let mut sim =
            simflow::Simulation::new(&lab.platform, simflow::NetworkConfig::default());
        for t in &hypotheses[selection.best] {
            let src = lab.platform.host_by_name(&t.src).expect("src");
            let dst = lab.platform.host_by_name(&t.dst).expect("dst");
            sim.add_transfer(src, dst, t.size).expect("transfer");
        }
        let (report, trace) = sim.run_traced().expect("traced run");
        let out = "chosen_plan.trace.json";
        std::fs::write(out, trace.to_chrome_json()).expect("write trace");
        println!(
            "\nwrote {out}: {} events, {} reshares, {} calendar pops \
             (load in about:tracing)",
            trace.events.len(),
            report.stats.reshares,
            report.stats.calendar_pops
        );
    }

    let naive_makespan = execute(&naive);
    let chosen_makespan = execute(&hypotheses[selection.best]);
    println!("\nexecuted on the testbed:");
    println!("  naive closest-replica plan : {naive_makespan:.1} s");
    println!("  forecast-driven plan       : {chosen_makespan:.1} s");
    if selection.best != 0 {
        println!(
            "  → the simulation-driven scheduler staged data {:.0}% faster",
            (naive_makespan / chosen_makespan - 1.0) * 100.0
        );
    } else {
        println!("  → the naive plan was already optimal for this draw");
    }
}
