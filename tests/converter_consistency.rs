//! Cross-crate integration: the three platform flavors agree where they
//! must and differ where the paper says they differ.

use g5k::{synth, to_simflow, Flavor};
use pilgrim_core::{Pnfs, TransferRequest};
use simflow::NetworkConfig;

fn req(src: &str, dst: &str, size: f64) -> TransferRequest {
    TransferRequest { src: src.into(), dst: dst.into(), size }
}

#[test]
fn flat_and_hierarchical_predict_identically() {
    // same links, same routes — only the routing *representation* differs,
    // so single-flow and concurrent predictions must match exactly
    let api = synth::standard();
    let mut pnfs = Pnfs::new(NetworkConfig::default());
    pnfs.register_platform("hier", to_simflow(&api, Flavor::G5kTest));
    pnfs.register_platform("flat", to_simflow(&api, Flavor::FlatFull));

    let requests = vec![
        req("sagittaire-1.lyon.grid5000.fr", "sagittaire-9.lyon.grid5000.fr", 7.74e8),
        req("graphene-1.nancy.grid5000.fr", "graphene-144.nancy.grid5000.fr", 7.74e8),
        req("sagittaire-1.lyon.grid5000.fr", "graphene-7.nancy.grid5000.fr", 7.74e8),
        req("chti-3.lille.grid5000.fr", "capricorne-2.lyon.grid5000.fr", 2.15e8),
    ];
    let hier = pnfs.predict("hier", &requests).unwrap();
    let flat = pnfs.predict("flat", &requests).unwrap();
    for (h, f) in hier.iter().zip(&flat) {
        assert!(
            (h.duration - f.duration).abs() < 1e-9 * h.duration,
            "{}→{}: {} vs {}",
            h.src,
            h.dst,
            h.duration,
            f.duration
        );
    }
}

#[test]
fn cabinets_overconstrains_concurrent_cluster_traffic() {
    // the paper kept g5k_test because "it actually conforms more to the
    // reality and we have found that all predictions based on g5k_test
    // are better": the cabinets abstraction funnels whole clusters
    // through one link, inflating concurrent predictions
    let api = synth::standard();
    let mut pnfs = Pnfs::new(NetworkConfig::default());
    pnfs.register_platform("g5k_test", to_simflow(&api, Flavor::G5kTest));
    pnfs.register_platform("g5k_cabinets", to_simflow(&api, Flavor::G5kCabinets));

    let requests: Vec<TransferRequest> = (0..30)
        .map(|i| {
            req(
                &format!("sagittaire-{}.lyon.grid5000.fr", i + 1),
                &format!("sagittaire-{}.lyon.grid5000.fr", i + 31),
                7.74e8,
            )
        })
        .collect();
    let test = pnfs.predict("g5k_test", &requests).unwrap();
    let cab = pnfs.predict("g5k_cabinets", &requests).unwrap();
    let mean = |v: &[pilgrim_core::Prediction]| {
        v.iter().map(|p| p.duration).sum::<f64>() / v.len() as f64
    };
    // 30 × 1 Gbit/s demand into a 10 Gbit/s cabinet: ≥ 2× slower forecast
    assert!(
        mean(&cab) > 2.0 * mean(&test),
        "cabinets {} vs test {}",
        mean(&cab),
        mean(&test)
    );
    // single flows, by contrast, agree closely
    let one = vec![req(
        "sagittaire-1.lyon.grid5000.fr",
        "sagittaire-2.lyon.grid5000.fr",
        7.74e8,
    )];
    let t1 = pnfs.predict("g5k_test", &one).unwrap()[0].duration;
    let c1 = pnfs.predict("g5k_cabinets", &one).unwrap()[0].duration;
    assert!((t1 - c1).abs() / t1 < 0.05, "{t1} vs {c1}");
}

#[test]
fn hierarchical_routing_saves_quadratic_memory() {
    // the paper: before SimGrid's AS hierarchy, "it was impossible to
    // wholly simulate Grid'5000" because of the huge routing table
    let api = synth::standard();
    let hier = to_simflow(&api, Flavor::G5kTest);
    let flat = to_simflow(&api, Flavor::FlatFull);
    let n = flat.host_count();
    assert_eq!(flat.stored_route_entries(), n * (n - 1));
    assert!(
        hier.stored_route_entries() < flat.stored_route_entries() / 100,
        "hierarchical {} vs flat {}",
        hier.stored_route_entries(),
        flat.stored_route_entries()
    );
}

#[test]
fn every_testbed_host_is_predictable() {
    // name-consistency across the two worlds: anything measurable is
    // forecastable
    let api = synth::standard();
    let platform = to_simflow(&api, Flavor::G5kTest);
    let tnet = g5k::to_packetsim(&api);
    for site in &api.sites {
        for cluster in &site.clusters {
            for i in [1, cluster.nodes] {
                let name = site.fqdn(cluster, i);
                assert!(platform.host_by_name(&name).is_some(), "{name} not in platform");
                assert!(tnet.network.node_by_name(&name).is_some(), "{name} not in testbed");
            }
        }
    }
}
