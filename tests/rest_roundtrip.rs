//! End-to-end REST integration: the full Pilgrim stack behind a real TCP
//! socket, exercised with the paper's example requests.

use pilgrim_core::http::{http_get, Server};
use pilgrim_core::{Metrology, PilgrimService, Pnfs};
use rrd::{time, ArchiveSpec, Cf, Database, DsKind};
use simflow::NetworkConfig;

fn start_server() -> Server {
    let metrology = Metrology::new();
    let mut db = Database::new(
        15,
        DsKind::Gauge,
        120,
        &[ArchiveSpec { cf: Cf::Average, steps_per_row: 1, rows: 240 }],
    );
    let t0 = time::parse_datetime("2012-05-04 05:59:00").unwrap();
    db.update(t0, 168.92).unwrap();
    for k in 1..=10 {
        db.update(t0 + k * 15, 168.88).unwrap();
    }
    metrology.insert("ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd", db);

    let api = g5k::synth::standard();
    let mut pnfs = Pnfs::new(NetworkConfig::default());
    pnfs.register_platform("g5k_test", g5k::to_simflow(&api, g5k::Flavor::G5kTest));

    let service = PilgrimService::new(metrology, pnfs);
    Server::start("127.0.0.1:0", 2, service.into_handler()).expect("bind")
}

#[test]
fn metrology_query_over_http() {
    let server = start_server();
    let (status, body) = http_get(
        server.addr(),
        "/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd\
         ?begin=2012-05-04%2006:00:00&end=2012-05-04%2006:01:00",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = jsonlite::Value::parse(&body).unwrap();
    let points = v.as_array().unwrap();
    assert_eq!(points.len(), 4, "the paper's one-minute window: {body}");
    // timestamps 15 s apart, values near the seeded power draw
    assert_eq!(points[1][0].as_i64().unwrap() - points[0][0].as_i64().unwrap(), 15);
    assert!((points[0][1].as_f64().unwrap() - 168.88).abs() < 0.2);
}

#[test]
fn predict_transfers_over_http() {
    let server = start_server();
    let (status, body) = http_get(
        server.addr(),
        "/pilgrim/predict_transfers/g5k_test\
         ?transfer=capricorne-36.lyon.grid5000.fr,griffon-50.nancy.grid5000.fr,5e8\
         &transfer=capricorne-36.lyon.grid5000.fr,capricorne-1.lyon.grid5000.fr,5e8",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let v = jsonlite::Value::parse(&body).unwrap();
    assert_eq!(v.as_array().unwrap().len(), 2);
    // the paper's answer shape: src/dst/size/duration objects
    assert_eq!(v[0]["src"].as_str(), Some("capricorne-36.lyon.grid5000.fr"));
    assert_eq!(v[0]["size"].as_f64(), Some(5e8));
    let inter = v[0]["duration"].as_f64().unwrap();
    let intra = v[1]["duration"].as_f64().unwrap();
    assert!(intra > 4.0 && intra < 6.0, "paper: 4.77 s, got {intra}");
    assert!(inter > intra, "inter-site slower, paper: 16.0 s vs 4.77 s");
}

#[test]
fn error_paths_over_http() {
    let server = start_server();
    let (s1, _) = http_get(server.addr(), "/pilgrim/rrd/ghost.rrd?begin=0&end=1").unwrap();
    assert_eq!(s1, 404);
    let (s2, _) =
        http_get(server.addr(), "/pilgrim/predict_transfers/ghost?transfer=a,b,1").unwrap();
    assert_eq!(s2, 404);
    let (s3, _) = http_get(server.addr(), "/pilgrim/predict_transfers/g5k_test?transfer=bad")
        .unwrap();
    assert_eq!(s3, 400);
    let (s4, _) = http_get(server.addr(), "/definitely/not/there").unwrap();
    assert_eq!(s4, 404);
}

#[test]
fn many_parallel_clients() {
    let server = start_server();
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let size = 1e8 * (i + 1) as f64;
                let (status, body) = http_get(
                    addr,
                    &format!(
                        "/pilgrim/predict_transfers/g5k_test\
                         ?transfer=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,{size}"
                    ),
                )
                .unwrap();
                assert_eq!(status, 200);
                jsonlite::Value::parse(&body).unwrap()[0]["duration"]
                    .as_f64()
                    .unwrap()
            })
        })
        .collect();
    let durations: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // more bytes, more time: the independent predictions stay ordered
    for w in durations.windows(2) {
        assert!(w[1] > w[0], "{durations:?}");
    }
}
