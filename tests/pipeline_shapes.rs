//! Cross-crate integration: the evaluation pipeline reproduces the
//! paper's qualitative claims on scaled-down runs (2 repetitions).
//!
//! These are the DESIGN.md "shape criteria": not absolute numbers — our
//! substrate is a simulator, not Grid'5000 — but who wins, in which
//! direction, and where the crossovers fall.

use experiments::figures::{figure, run_figure, Lab};
use experiments::summarize;

fn lab() -> Lab {
    Lab::new()
}

#[test]
fn sagittaire_errors_negative_small_vanishing_large() {
    let lab = lab();
    let data = run_figure(&lab, &figure("fig3").unwrap(), 2, 1);
    let first = &data.points[0]; // 1e5 bytes
    let last = &data.points[9]; // 1e10 bytes
    assert!(
        first.err.median < -3.0,
        "small transfers must be dominated by unmodeled overheads: {:?}",
        first.err
    );
    assert!(
        last.err.median.abs() < 0.4,
        "large transfers must be accurately predicted: {:?}",
        last.err
    );
    // monotone improvement in magnitude along the size sweep
    assert!(first.err.median.abs() > last.err.median.abs());
}

#[test]
fn graphene_small_size_errors_are_positive() {
    // figures 6–9: the modeled per-hop latency (hard-coded 1e-4 × 13.01)
    // far exceeds the real cut-through switches, so graphene predictions
    // of small transfers are pessimistic — the opposite sign of sagittaire.
    // fig7 (10 distinct sources) shows it cleanly; fig6's single shared
    // source NIC dominates both worlds equally and dilutes the signal.
    let lab = lab();
    let f7 = run_figure(&lab, &figure("fig7").unwrap(), 2, 1);
    assert!(
        f7.points[0].err.median > 0.5,
        "graphene 10×10 at 1e5: {:?}",
        f7.points[0].err
    );
    let f6 = run_figure(&lab, &figure("fig6").unwrap(), 2, 1);
    assert!(
        f6.points[0].err.median > 0.0,
        "graphene 1×10 at 1e5 still leans positive: {:?}",
        f6.points[0].err
    );
}

#[test]
fn graphene_overshoot_grows_with_flow_count() {
    // figures 8–9: with ≥ 30 symmetric flows the bidirectionally-shared
    // uplinks of the platform model predict contention full-duplex
    // hardware never sees; the overshoot grows from 30×30 to 50×50
    let lab = lab();
    let f8 = run_figure(&lab, &figure("fig8").unwrap(), 2, 1);
    let f9 = run_figure(&lab, &figure("fig9").unwrap(), 2, 1);
    let large8 = f8.points[9].err;
    let large9 = f9.points[9].err;
    assert!(
        large9.median > 0.25,
        "50×50 must overshoot (paper: ×1.7): {large9:?}"
    );
    assert!(
        large9.median > large8.median,
        "overshoot grows with flow count: 30×30 {large8:?} vs 50×50 {large9:?}"
    );
    // and the paper's sagittaire contrast: no overshoot without uplinks
    let f5 = run_figure(&lab, &figure("fig5").unwrap(), 2, 1);
    assert!(f5.points[9].err.median < 0.1, "{:?}", f5.points[9].err);
}

#[test]
fn grid_scale_forecasts_stay_relevant() {
    // figures 10–11: "at the grid scale, the forecasts are still
    // relevant, and we see the same limitations for small transfer sizes"
    let lab = lab();
    let data = run_figure(&lab, &figure("fig10").unwrap(), 2, 1);
    assert!(data.points[0].err.q1 < -2.0, "small sizes broken: {:?}", data.points[0].err);
    assert!(
        data.points[9].err.median.abs() < 0.5,
        "large sizes fine: {:?}",
        data.points[9].err
    );
}

#[test]
fn pooled_summary_is_in_the_paper_ballpark() {
    let lab = lab();
    let ids = ["fig3", "fig5", "fig8", "fig10"];
    let datas: Vec<_> = ids
        .iter()
        .map(|id| run_figure(&lab, &figure(id).unwrap(), 2, 7))
        .collect();
    let s = summarize(&datas).expect("samples above threshold");
    // paper: median |err| 0.149, σ 0.532, 74 % below 0.575
    assert!(s.median_abs_error < 0.45, "median |err| {}", s.median_abs_error);
    assert!(s.std_error < 1.2, "σ {}", s.std_error);
    assert!(s.fraction_below_0575 > 0.5, "{}", s.fraction_below_0575);
}
