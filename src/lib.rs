pub use simflow; pub use packetsim; pub use g5k; pub use rrd; pub use jsonlite; pub use pilgrim_core; pub use experiments;
